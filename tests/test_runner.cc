// Unit tests for the Graph 500 benchmark runner protocol.
#include "graph500/runner.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph500/reference_bfs.h"
#include "graph/builder.h"
#include "graph/graph_stats.h"
#include "graph/rmat.h"

namespace bfsx::graph500 {
namespace {

graph::CsrGraph test_graph() {
  graph::RmatParams p;
  p.scale = 10;
  return graph::build_csr(graph::generate_rmat(p));
}

TEST(Runner, RunsRequestedRootsAndAggregates) {
  const graph::CsrGraph g = test_graph();
  const sim::Device cpu{sim::make_sandy_bridge_cpu()};
  RunnerOptions opts;
  opts.num_roots = 8;
  const BenchmarkResult r = run_benchmark(g, make_top_down_engine(cpu), opts);
  EXPECT_EQ(r.runs.size(), 8u);
  EXPECT_EQ(r.validation_failures, 0);
  EXPECT_GT(r.stats.harmonic_mean, 0.0);
  EXPECT_GT(r.mean_seconds(), 0.0);
  for (const RootRun& run : r.runs) {
    EXPECT_TRUE(run.valid);
    EXPECT_GT(run.teps, 0.0);
    EXPECT_GT(run.reached, 0);
  }
}

TEST(Runner, IsDeterministicUnderSeed) {
  const graph::CsrGraph g = test_graph();
  const sim::Device cpu{sim::make_sandy_bridge_cpu()};
  RunnerOptions opts;
  opts.num_roots = 4;
  const BenchmarkResult a = run_benchmark(g, make_top_down_engine(cpu), opts);
  const BenchmarkResult b = run_benchmark(g, make_top_down_engine(cpu), opts);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].root, b.runs[i].root);
    EXPECT_DOUBLE_EQ(a.runs[i].seconds, b.runs[i].seconds);
  }
}

TEST(Runner, DetectsCorruptedEngine) {
  const graph::CsrGraph g = test_graph();
  const sim::Device cpu{sim::make_sandy_bridge_cpu()};
  BfsEngine broken = [&cpu](const graph::CsrGraph& gg,
                            graph::vid_t root) -> TimedBfs {
    TimedBfs t = make_top_down_engine(cpu)(gg, root);
    // Corrupt one level entry: the validator must notice.
    t.result.level[static_cast<std::size_t>(root)] = 3;
    return t;
  };
  RunnerOptions opts;
  opts.num_roots = 3;
  EXPECT_THROW(run_benchmark(g, broken, opts), std::runtime_error);
}

TEST(Runner, ValidationCanBeDisabled) {
  const graph::CsrGraph g = test_graph();
  const sim::Device cpu{sim::make_sandy_bridge_cpu()};
  RunnerOptions opts;
  opts.num_roots = 2;
  opts.validate = false;
  const BenchmarkResult r = run_benchmark(g, make_top_down_engine(cpu), opts);
  EXPECT_EQ(r.validation_failures, 0);
}

TEST(Runner, RejectsNonPositiveRootCount) {
  const graph::CsrGraph g = test_graph();
  const sim::Device cpu{sim::make_sandy_bridge_cpu()};
  RunnerOptions opts;
  opts.num_roots = 0;
  EXPECT_THROW(run_benchmark(g, make_top_down_engine(cpu), opts),
               std::invalid_argument);
}

TEST(ReferenceEngine, IsSlowerThanOptimisedTopDownByThePenalty) {
  const graph::CsrGraph g = test_graph();
  const sim::Device cpu{sim::make_sandy_bridge_cpu()};
  const auto roots = graph::sample_roots(g, 1, 500);
  const TimedBfs ref = make_reference_engine(cpu)(g, roots[0]);
  const TimedBfs opt = make_top_down_engine(cpu)(g, roots[0]);
  EXPECT_NEAR(ref.seconds / opt.seconds, kReferencePenalty, 1e-9);
}

TEST(Engines, BottomUpEngineProducesValidResult) {
  const graph::CsrGraph g = test_graph();
  const sim::Device gpu{sim::make_kepler_gpu()};
  const auto roots = graph::sample_roots(g, 1, 7);
  const TimedBfs t = make_bottom_up_engine(gpu)(g, roots[0]);
  EXPECT_TRUE(bfs::validate_bfs(g, roots[0], t.result).ok);
  EXPECT_GT(t.seconds, 0.0);
}

}  // namespace
}  // namespace bfsx::graph500
