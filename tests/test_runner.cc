// Unit tests for the Graph 500 benchmark runner protocol.
#include "graph500/runner.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "graph500/native_engine.h"
#include "graph500/reference_bfs.h"
#include "graph/builder.h"
#include "graph/graph_stats.h"
#include "graph/rmat.h"
#include "obs/registry.h"

namespace bfsx::graph500 {
namespace {

graph::CsrGraph test_graph() {
  graph::RmatParams p;
  p.scale = 10;
  return graph::build_csr(graph::generate_rmat(p));
}

TEST(Runner, RunsRequestedRootsAndAggregates) {
  const graph::CsrGraph g = test_graph();
  const sim::Device cpu{sim::make_sandy_bridge_cpu()};
  RunnerOptions opts;
  opts.num_roots = 8;
  const BenchmarkResult r = run_benchmark(g, make_top_down_engine(cpu), opts);
  EXPECT_EQ(r.runs.size(), 8u);
  EXPECT_EQ(r.validation_failures, 0);
  EXPECT_GT(r.stats.harmonic_mean, 0.0);
  EXPECT_GT(r.mean_seconds(), 0.0);
  for (const RootRun& run : r.runs) {
    EXPECT_TRUE(run.valid);
    EXPECT_GT(run.teps, 0.0);
    EXPECT_GT(run.reached, 0);
  }
}

TEST(Runner, IsDeterministicUnderSeed) {
  const graph::CsrGraph g = test_graph();
  const sim::Device cpu{sim::make_sandy_bridge_cpu()};
  RunnerOptions opts;
  opts.num_roots = 4;
  const BenchmarkResult a = run_benchmark(g, make_top_down_engine(cpu), opts);
  const BenchmarkResult b = run_benchmark(g, make_top_down_engine(cpu), opts);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].root, b.runs[i].root);
    EXPECT_DOUBLE_EQ(a.runs[i].seconds, b.runs[i].seconds);
  }
}

TEST(Runner, DetectsCorruptedEngine) {
  const graph::CsrGraph g = test_graph();
  const sim::Device cpu{sim::make_sandy_bridge_cpu()};
  BfsEngine broken = [&cpu](const graph::CsrGraph& gg,
                            graph::vid_t root) -> TimedBfs {
    TimedBfs t = make_top_down_engine(cpu)(gg, root);
    // Corrupt one level entry: the validator must notice.
    t.result.level[static_cast<std::size_t>(root)] = 3;
    return t;
  };
  RunnerOptions opts;
  opts.num_roots = 3;
  EXPECT_THROW(run_benchmark(g, broken, opts), std::runtime_error);
}

TEST(Runner, ValidationCanBeDisabled) {
  const graph::CsrGraph g = test_graph();
  const sim::Device cpu{sim::make_sandy_bridge_cpu()};
  RunnerOptions opts;
  opts.num_roots = 2;
  opts.validate = false;
  const BenchmarkResult r = run_benchmark(g, make_top_down_engine(cpu), opts);
  EXPECT_EQ(r.validation_failures, 0);
}

TEST(Runner, RejectsNonPositiveRootCount) {
  const graph::CsrGraph g = test_graph();
  const sim::Device cpu{sim::make_sandy_bridge_cpu()};
  RunnerOptions opts;
  opts.num_roots = 0;
  EXPECT_THROW(run_benchmark(g, make_top_down_engine(cpu), opts),
               std::invalid_argument);
}

TEST(Runner, ParsesBatchModes) {
  EXPECT_EQ(parse_batch_mode("serial"), BatchMode::kSerial);
  EXPECT_EQ(parse_batch_mode("parallel_roots"), BatchMode::kParallelRoots);
  EXPECT_EQ(parse_batch_mode("msbfs"), BatchMode::kMsBfs);
  EXPECT_THROW((void)parse_batch_mode("parallel"), std::invalid_argument);
  EXPECT_THROW((void)parse_batch_mode(""), std::invalid_argument);
}

// Satellite regression for the metrics race: parallel_roots must
// account exactly what serial does — per-root observations, merged on
// the calling thread, in root order.
TEST(Runner, MetricsIdenticalAcrossBatchModes) {
  const graph::CsrGraph g = test_graph();
  const sim::Device cpu{sim::make_sandy_bridge_cpu()};
  constexpr int kRoots = 8;

  auto run_mode = [&](BatchMode mode, obs::Registry& metrics) {
    RunnerOptions opts;
    opts.num_roots = kRoots;
    opts.batch_mode = mode;
    opts.metrics = &metrics;
    return run_benchmark(g, make_top_down_engine(cpu), opts);
  };

  obs::Registry serial_metrics, parallel_metrics;
  const BenchmarkResult serial = run_mode(BatchMode::kSerial, serial_metrics);
  const BenchmarkResult parallel =
      run_mode(BatchMode::kParallelRoots, parallel_metrics);

  EXPECT_EQ(serial_metrics.counter("runner.roots"), kRoots);
  EXPECT_EQ(serial_metrics.counters(), parallel_metrics.counters());
  EXPECT_EQ(serial_metrics.timer("runner.engine_seconds").count, kRoots);
  EXPECT_EQ(parallel_metrics.timer("runner.engine_seconds").count, kRoots);
  EXPECT_EQ(parallel_metrics.timer("runner.validate_seconds").count, kRoots);

  // The modelled engine reports deterministic seconds, so the whole
  // aggregation must be bit-identical across dispatch modes.
  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  for (std::size_t i = 0; i < serial.runs.size(); ++i) {
    EXPECT_EQ(serial.runs[i].root, parallel.runs[i].root);
    EXPECT_DOUBLE_EQ(serial.runs[i].seconds, parallel.runs[i].seconds);
    EXPECT_DOUBLE_EQ(serial.runs[i].teps, parallel.runs[i].teps);
    EXPECT_EQ(serial.runs[i].edges, parallel.runs[i].edges);
  }
  EXPECT_DOUBLE_EQ(serial.stats.harmonic_mean, parallel.stats.harmonic_mean);
}

#ifdef _OPENMP
TEST(Runner, ParallelRootsIsThreadCountInvariant) {
  const graph::CsrGraph g = test_graph();
  const sim::Device cpu{sim::make_sandy_bridge_cpu()};
  RunnerOptions opts;
  opts.num_roots = 12;
  opts.batch_mode = BatchMode::kParallelRoots;
  const int saved = omp_get_max_threads();
  omp_set_num_threads(1);
  const BenchmarkResult one = run_benchmark(g, make_top_down_engine(cpu), opts);
  omp_set_num_threads(4);
  const BenchmarkResult four =
      run_benchmark(g, make_top_down_engine(cpu), opts);
  omp_set_num_threads(saved);
  ASSERT_EQ(one.runs.size(), four.runs.size());
  for (std::size_t i = 0; i < one.runs.size(); ++i) {
    EXPECT_EQ(one.runs[i].root, four.runs[i].root);
    EXPECT_DOUBLE_EQ(one.runs[i].seconds, four.runs[i].seconds);
    EXPECT_DOUBLE_EQ(one.runs[i].teps, four.runs[i].teps);
  }
  EXPECT_DOUBLE_EQ(one.stats.harmonic_mean, four.stats.harmonic_mean);
}
#endif  // _OPENMP

TEST(Runner, ExplicitRootsOverrideSampling) {
  const graph::CsrGraph g = test_graph();
  const sim::Device cpu{sim::make_sandy_bridge_cpu()};
  RunnerOptions opts;
  opts.num_roots = 99;  // must be ignored
  opts.roots = {1, 7, 1, 42};
  const BenchmarkResult r = run_benchmark(g, make_top_down_engine(cpu), opts);
  ASSERT_EQ(r.runs.size(), 4u);
  EXPECT_EQ(r.runs[0].root, 1);
  EXPECT_EQ(r.runs[1].root, 7);
  EXPECT_EQ(r.runs[2].root, 1);
  EXPECT_EQ(r.runs[3].root, 42);

  opts.roots = {g.num_vertices()};
  EXPECT_THROW(run_benchmark(g, make_top_down_engine(cpu), opts),
               std::invalid_argument);
}

TEST(Runner, MsBfsModeChunksByBatchSize) {
  const graph::CsrGraph g = test_graph();
  std::mutex mu;
  std::vector<std::size_t> chunk_sizes;
  // A fake batch engine that records chunking and fabricates
  // deterministic results (validation disabled below).
  BatchBfsEngine fake = [&](const graph::CsrGraph& gg,
                            const std::vector<graph::vid_t>& batch) {
    {
      const std::lock_guard<std::mutex> lock(mu);
      chunk_sizes.push_back(batch.size());
    }
    std::vector<TimedBfs> out(batch.size());
    for (TimedBfs& t : out) {
      t.result.reached = 1;
      t.result.edges_in_component = 100;
      t.seconds = 1e-3;
    }
    (void)gg;
    return out;
  };
  RunnerOptions opts;
  opts.num_roots = 10;
  opts.batch_size = 4;
  opts.batch_mode = BatchMode::kMsBfs;
  opts.validate = false;
  const BenchmarkResult r = run_benchmark(g, fake, opts);
  EXPECT_EQ(r.runs.size(), 10u);
  ASSERT_EQ(chunk_sizes.size(), 3u);
  EXPECT_EQ(chunk_sizes[0], 4u);
  EXPECT_EQ(chunk_sizes[1], 4u);
  EXPECT_EQ(chunk_sizes[2], 2u);
}

TEST(Runner, MsBfsModeRejectsPerRootEngine) {
  const graph::CsrGraph g = test_graph();
  const sim::Device cpu{sim::make_sandy_bridge_cpu()};
  RunnerOptions opts;
  opts.num_roots = 2;
  opts.batch_mode = BatchMode::kMsBfs;
  EXPECT_THROW(run_benchmark(g, make_top_down_engine(cpu), opts),
               std::invalid_argument);
}

TEST(Runner, MsBfsEngineEndToEnd) {
  const graph::CsrGraph g = test_graph();
  obs::Registry metrics;
  RunnerOptions opts;
  opts.num_roots = 8;
  opts.batch_size = 8;
  opts.batch_mode = BatchMode::kMsBfs;
  opts.metrics = &metrics;
  const BenchmarkResult r =
      run_benchmark(g, make_msbfs_batch_engine(core::HybridPolicy{}), opts);
  EXPECT_EQ(r.runs.size(), 8u);
  EXPECT_EQ(r.validation_failures, 0);
  EXPECT_GT(r.stats.harmonic_mean, 0.0);
  EXPECT_EQ(metrics.counter("runner.batches"), 1);
  EXPECT_EQ(metrics.timer("runner.batch_seconds").count, 1);
}

TEST(ReferenceEngine, IsSlowerThanOptimisedTopDownByThePenalty) {
  const graph::CsrGraph g = test_graph();
  const sim::Device cpu{sim::make_sandy_bridge_cpu()};
  const auto roots = graph::sample_roots(g, 1, 500);
  const TimedBfs ref = make_reference_engine(cpu)(g, roots[0]);
  const TimedBfs opt = make_top_down_engine(cpu)(g, roots[0]);
  EXPECT_NEAR(ref.seconds / opt.seconds, kReferencePenalty, 1e-9);
}

TEST(Engines, BottomUpEngineProducesValidResult) {
  const graph::CsrGraph g = test_graph();
  const sim::Device gpu{sim::make_kepler_gpu()};
  const auto roots = graph::sample_roots(g, 1, 7);
  const TimedBfs t = make_bottom_up_engine(gpu)(g, roots[0]);
  EXPECT_TRUE(bfs::validate_bfs(g, roots[0], t.result).ok);
  EXPECT_GT(t.seconds, 0.0);
}

}  // namespace
}  // namespace bfsx::graph500
