// serve::QueryEngine: every served answer — batched, single-source,
// cached, and post-insert — must be bit-equal to
// graph500::reference_bfs on the pinned epoch's graph (levels exactly;
// parent trees structurally, via validate_bfs, since parallel kernels
// tie-break nondeterministically).
#include "serve/engine.h"

#include <gtest/gtest.h>

#include <future>
#include <utility>
#include <vector>

#include "bfs/validate.h"
#include "graph/builder.h"
#include "graph/graph_stats.h"
#include "graph/rmat.h"
#include "graph500/reference_bfs.h"
#include "obs/sink.h"
#include "serve/trace.h"

namespace bfsx::serve {
namespace {

graph::EdgeList rmat_edges(int scale, std::uint64_t seed = 7) {
  graph::RmatParams p;
  p.scale = scale;
  p.edgefactor = 8;
  p.seed = seed;
  return graph::generate_rmat(p);
}

/// The oracle graph: built exactly the way the engine builds epoch 0
/// (default BuildOptions: symmetrised, deduplicated).
graph::CsrGraph oracle_graph(const graph::EdgeList& edges) {
  return graph::build_csr(edges);
}

void expect_matches_reference(const graph::CsrGraph& g,
                              const QueryResult& r) {
  ASSERT_TRUE(r.ok) << "rejected: " << to_string(r.reject);
  const bfs::BfsResult ref = graph500::reference_bfs(g, r.source);
  switch (r.kind) {
    case QueryKind::kBfs: {
      ASSERT_NE(r.traversal, nullptr);
      EXPECT_EQ(r.traversal->level, ref.level) << "source " << r.source;
      EXPECT_EQ(r.traversal->reached, ref.reached);
      const bfs::ValidationReport rep =
          bfs::validate_bfs(g, r.source, *r.traversal);
      EXPECT_TRUE(rep.ok) << rep.format();
      break;
    }
    case QueryKind::kDistance:
    case QueryKind::kReachability: {
      const std::int32_t want =
          ref.level[static_cast<std::size_t>(r.target)];
      EXPECT_EQ(r.distance, want)
          << "source " << r.source << " target " << r.target;
      EXPECT_EQ(r.reachable, want >= 0);
      break;
    }
  }
}

TEST(ServeEngine, BatchedAnswersAreBitEqualToReference) {
  graph::EdgeList edges = rmat_edges(9);
  const graph::CsrGraph g = oracle_graph(edges);
  const std::vector<graph::vid_t> roots = graph::sample_roots(g, 12, 500);

  ServeOptions opts;
  opts.workers = 2;
  opts.cache_enabled = false;  // cached answers get their own test
  opts.start_paused = true;    // submit everything, then one resume
  QueryEngine engine(std::move(edges), opts);

  std::vector<std::future<QueryResult>> futures;
  for (std::size_t i = 0; i < roots.size(); ++i) {
    Query q;
    switch (i % 3) {
      case 0: q.kind = QueryKind::kBfs; break;
      case 1: q.kind = QueryKind::kDistance; break;
      default: q.kind = QueryKind::kReachability; break;
    }
    q.source = roots[i];
    q.target = roots[(i + 5) % roots.size()];
    futures.push_back(engine.submit(q));
    // Duplicate every third query: repeated roots must share a lane
    // and still answer correctly.
    if (i % 3 == 0) futures.push_back(engine.submit(q));
  }
  engine.resume();

  for (std::future<QueryResult>& f : futures) {
    const QueryResult r = f.get();
    EXPECT_EQ(r.epoch, 0u);
    expect_matches_reference(g, r);
  }
  const ServeStats st = engine.stats();
  EXPECT_GT(st.batched_queries, 0);
  EXPECT_GT(st.max_batch, 1);
  EXPECT_EQ(st.served, static_cast<std::int64_t>(futures.size()));
}

TEST(ServeEngine, DuplicateSourcesShareOneTraversal) {
  graph::EdgeList edges = rmat_edges(8);
  ServeOptions opts;
  opts.workers = 1;  // one tick serves both
  opts.cache_enabled = false;
  opts.start_paused = true;
  QueryEngine engine(std::move(edges), opts);

  Query q;
  q.kind = QueryKind::kBfs;
  q.source = 1;
  std::future<QueryResult> a = engine.submit(q);
  std::future<QueryResult> b = engine.submit(q);
  engine.resume();
  const QueryResult ra = a.get();
  const QueryResult rb = b.get();
  ASSERT_TRUE(ra.ok && rb.ok);
  EXPECT_EQ(ra.batch_lanes, 1);  // two queries, one distinct source
  EXPECT_EQ(ra.traversal, rb.traversal);  // literally the same map
}

TEST(ServeEngine, CachedDistancesAreExact) {
  graph::EdgeList edges = rmat_edges(9, 21);
  const graph::CsrGraph g = oracle_graph(edges);

  ServeOptions opts;
  opts.workers = 1;
  opts.num_landmarks = 8;
  QueryEngine engine(std::move(edges), opts);

  // Sources drawn from the cache's own landmark set: guaranteed hits.
  const std::vector<graph::vid_t> roots = graph::sample_roots(g, 6, 11);
  std::vector<std::future<QueryResult>> futures;
  LandmarkCache reference_cache(g, 0, opts.num_landmarks);
  for (const graph::vid_t hub : reference_cache.landmarks()) {
    for (const graph::vid_t t : roots) {
      Query q;
      q.kind = QueryKind::kDistance;
      q.source = hub;
      q.target = t;
      futures.push_back(engine.submit(q));
    }
  }
  std::int64_t hits = 0;
  for (std::future<QueryResult>& f : futures) {
    const QueryResult r = f.get();
    expect_matches_reference(g, r);
    if (r.cache_hit) ++hits;
  }
  EXPECT_EQ(hits, static_cast<std::int64_t>(futures.size()))
      << "landmark-sourced distance queries must all hit the cache";
  EXPECT_EQ(engine.stats().cache_hits, hits);
}

TEST(ServeEngine, EngineOverrideDispatchesSingleSource) {
  graph::EdgeList edges = rmat_edges(8);
  const graph::CsrGraph g = oracle_graph(edges);
  ServeOptions opts;
  opts.workers = 1;
  opts.cache_enabled = false;
  QueryEngine engine(std::move(edges), opts);

  Query q;
  q.kind = QueryKind::kBfs;
  q.source = 2;
  q.engine = "native-td";
  const QueryResult r = engine.submit(q).get();
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.batch_lanes, 0);  // not served by an MS-BFS pass
  expect_matches_reference(g, r);
  EXPECT_EQ(engine.stats().single_queries, 1);
}

TEST(ServeEngine, RejectsCarryReasons) {
  graph::EdgeList edges = rmat_edges(8);
  ServeOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 2;
  opts.cache_enabled = false;
  opts.start_paused = true;  // nothing drains: capacity must trip
  QueryEngine engine(std::move(edges), opts);
  const graph::vid_t n = engine.num_vertices();

  Query bad;
  bad.kind = QueryKind::kDistance;
  bad.source = n;  // one past the end
  bad.target = 0;
  EXPECT_EQ(engine.submit(bad).get().reject, RejectReason::kInvalidVertex);
  bad.source = 0;
  bad.target = -1;
  EXPECT_EQ(engine.submit(bad).get().reject, RejectReason::kInvalidVertex);

  Query unknown;
  unknown.kind = QueryKind::kBfs;
  unknown.source = 0;
  unknown.engine = "no-such-engine";
  EXPECT_EQ(engine.submit(unknown).get().reject,
            RejectReason::kUnknownEngine);

  Query ok;
  ok.kind = QueryKind::kBfs;
  ok.source = 0;
  auto f1 = engine.submit(ok);
  auto f2 = engine.submit(ok);
  EXPECT_EQ(engine.submit(ok).get().reject, RejectReason::kQueueFull);

  const ServeStats st = engine.stats();
  EXPECT_EQ(st.rejected_invalid, 3);  // 2 vertices + 1 unknown engine
  EXPECT_EQ(st.rejected_full, 1);

  // The two admitted queries resolve with kShutdown when the engine
  // stops unresumed.
  engine.shutdown();
  EXPECT_EQ(f1.get().reject, RejectReason::kShutdown);
  EXPECT_EQ(f2.get().reject, RejectReason::kShutdown);
  EXPECT_EQ(engine.stats().rejected_shutdown, 2);
}

TEST(ServeEngine, PostInsertEpochsServeTheNewGraph) {
  // Two disconnected paths: 0-1-2 and 3-4-5.
  graph::EdgeList edges;
  edges.num_vertices = 6;
  edges.edges = {{0, 1}, {1, 2}, {3, 4}, {4, 5}};

  ServeOptions opts;
  opts.workers = 1;
  opts.num_landmarks = 4;
  QueryEngine engine(edges, opts);

  Query q;
  q.kind = QueryKind::kDistance;
  q.source = 0;
  q.target = 5;
  {
    const QueryResult r = engine.submit(q).get();
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.epoch, 0u);
    EXPECT_EQ(r.distance, -1);
    EXPECT_FALSE(r.reachable);
  }

  engine.insert_edge(2, 3);  // bridge the components
  EXPECT_EQ(engine.publish_inserts(), 1u);

  // Oracle over the same post-insert edge list.
  edges.edges.push_back({2, 3});
  const graph::CsrGraph bridged = graph::build_csr(edges);

  {
    const QueryResult r = engine.submit(q).get();
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.epoch, 1u);
    expect_matches_reference(bridged, r);
    EXPECT_EQ(r.distance, 5);  // 0-1-2-3-4-5
  }

  // A full BFS after the publish also answers on the new epoch.
  Query full;
  full.kind = QueryKind::kBfs;
  full.source = 0;
  const QueryResult r = engine.submit(full).get();
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.epoch, 1u);
  expect_matches_reference(bridged, r);
  EXPECT_EQ(engine.stats().epochs_published, 1);
  EXPECT_EQ(engine.stats().edges_inserted, 1);
}

TEST(ServeEngine, DrainWaitsForAllInFlightWork) {
  graph::EdgeList edges = rmat_edges(8);
  ServeOptions opts;
  opts.workers = 2;
  opts.cache_enabled = false;
  QueryEngine engine(std::move(edges), opts);

  std::vector<std::future<QueryResult>> futures;
  for (int i = 0; i < 40; ++i) {
    Query q;
    q.kind = QueryKind::kDistance;
    q.source = i % engine.num_vertices();
    q.target = (i * 7) % engine.num_vertices();
    futures.push_back(engine.submit(q));
  }
  engine.drain();
  const ServeStats st = engine.stats();
  EXPECT_EQ(st.served, 40);
  for (std::future<QueryResult>& f : futures) {
    EXPECT_TRUE(f.get().ok);
  }
}

TEST(ServeEngine, QueryEventsCoverEveryStage) {
  graph::EdgeList edges = rmat_edges(8);
  obs::MemorySink sink;
  ServeOptions opts;
  opts.workers = 1;
  opts.num_landmarks = 8;
  opts.sink = &sink;
  opts.start_paused = true;
  QueryEngine engine(edges, opts);

  const graph::CsrGraph g = oracle_graph(edges);
  const LandmarkCache probe(g, 0, opts.num_landmarks);
  ASSERT_FALSE(probe.landmarks().empty());

  Query hit;
  hit.kind = QueryKind::kDistance;
  hit.source = probe.landmarks().front();
  hit.target = 0;
  (void)engine.submit(hit).get();  // cache hit: resolves while paused

  Query queued;
  queued.kind = QueryKind::kBfs;
  queued.source = 0;
  auto f = engine.submit(queued);
  engine.resume();
  (void)f.get();
  engine.shutdown();

  bool saw_enqueue = false;
  bool saw_dispatch = false;
  bool saw_complete = false;
  bool saw_cache_hit = false;
  for (const obs::QueryEvent& e : sink.queries) {
    switch (e.stage) {
      case obs::QueryEvent::Stage::kEnqueue: saw_enqueue = true; break;
      case obs::QueryEvent::Stage::kDispatch: saw_dispatch = true; break;
      case obs::QueryEvent::Stage::kComplete: saw_complete = true; break;
      case obs::QueryEvent::Stage::kCacheHit: saw_cache_hit = true; break;
      default: break;
    }
  }
  EXPECT_TRUE(saw_enqueue);
  EXPECT_TRUE(saw_dispatch);
  EXPECT_TRUE(saw_complete);
  EXPECT_TRUE(saw_cache_hit);
}

TEST(ServeEngine, DeltaEpochAnswersAreBitEqualToReference) {
  graph::EdgeList edges = rmat_edges(9, 33);
  graph::EdgeList oracle_edges = edges;

  ServeOptions opts;
  opts.workers = 2;
  opts.num_landmarks = 8;
  ASSERT_TRUE(opts.delta_publish);  // the default publish policy
  QueryEngine engine(std::move(edges), opts);

  const std::vector<graph::Edge> batch = {{1, 2}, {3, 500}, {7, 350}};
  for (const graph::Edge& e : batch) {
    engine.insert_edge(e.src, e.dst);
    oracle_edges.edges.push_back(e);
  }
  EXPECT_EQ(engine.publish_inserts(), 1u);
  EXPECT_EQ(engine.stats().delta_publishes, 1);
  EXPECT_EQ(engine.stats().full_publishes, 0);
  // Insert-only publish: the landmark cache was repaired in place
  // (the one rebuild is the constructor's initial arm).
  EXPECT_EQ(engine.stats().cache_repairs, 1);
  EXPECT_EQ(engine.stats().cache_rebuilds, 1);

  const graph::CsrGraph oracle = oracle_graph(oracle_edges);
  for (const graph::vid_t root : graph::sample_roots(oracle, 6, 77)) {
    Query bfs_q;
    bfs_q.kind = QueryKind::kBfs;
    bfs_q.source = root;
    const QueryResult r = engine.submit(bfs_q).get();
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.epoch, 1u);
    expect_matches_reference(oracle, r);

    Query dist_q;
    dist_q.kind = QueryKind::kDistance;
    dist_q.source = root;
    dist_q.target = 500;
    expect_matches_reference(oracle, engine.submit(dist_q).get());
  }
}

TEST(ServeEngine, EngineOverridesDispatchOnDeltaEpochs) {
  graph::EdgeList edges = rmat_edges(8, 5);
  graph::EdgeList oracle_edges = edges;
  ServeOptions opts;
  opts.workers = 1;
  opts.cache_enabled = false;
  QueryEngine engine(std::move(edges), opts);

  engine.insert_edge(0, 9);
  oracle_edges.edges.push_back({0, 9});
  engine.publish_inserts();
  ASSERT_EQ(engine.stats().delta_publishes, 1);

  const graph::CsrGraph oracle = oracle_graph(oracle_edges);
  for (const char* name : {"td", "bu", "hybrid", "native-td", "ref"}) {
    Query q;
    q.kind = QueryKind::kBfs;
    q.source = 3;
    q.engine = name;
    const QueryResult r = engine.submit(q).get();
    ASSERT_TRUE(r.ok) << name;
    EXPECT_EQ(r.epoch, 1u) << name;
    EXPECT_EQ(r.batch_lanes, 0) << name;  // single-source path
    expect_matches_reference(oracle, r);
  }
  EXPECT_EQ(engine.stats().single_queries, 5);
}

TEST(ServeEngine, VertexGrowthServesTheGrownGraphEndToEnd) {
  // 0-1-2 path; insert an edge to a vertex past the current count.
  graph::EdgeList edges;
  edges.num_vertices = 3;
  edges.edges = {{0, 1}, {1, 2}};
  ServeOptions opts;
  opts.workers = 1;
  opts.num_landmarks = 4;
  QueryEngine engine(edges, opts);
  ASSERT_EQ(engine.num_vertices(), 3);

  engine.insert_edge(2, 5);
  engine.publish_inserts();
  EXPECT_EQ(engine.num_vertices(), 6);
  EXPECT_EQ(engine.stats().cache_repairs, 1);

  edges.num_vertices = 6;
  edges.edges.push_back({2, 5});
  const graph::CsrGraph grown = graph::build_csr(edges);

  // Queries touching the grown vertex are admitted and exact — both
  // through the batch path and through the repaired landmark cache.
  Query q;
  q.kind = QueryKind::kDistance;
  q.source = 0;
  q.target = 5;
  const QueryResult r = engine.submit(q).get();
  ASSERT_TRUE(r.ok);
  expect_matches_reference(grown, r);
  EXPECT_EQ(r.distance, 3);  // 0-1-2-5

  Query from_new;
  from_new.kind = QueryKind::kBfs;
  from_new.source = 5;
  expect_matches_reference(grown, engine.submit(from_new).get());
}

TEST(ServeEngine, RemovalsServeExactlyAndRebuildTheCache) {
  // Cycle 0-1-2-3-0 plus chord 0-2; remove the chord.
  graph::EdgeList edges;
  edges.num_vertices = 4;
  edges.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}};
  ServeOptions opts;
  opts.workers = 1;
  opts.num_landmarks = 4;
  QueryEngine engine(edges, opts);

  engine.remove_edge(0, 2);
  engine.publish_inserts();
  EXPECT_EQ(engine.stats().edges_removed, 1);
  // Removals can raise distances: repair is unsound, so the engine
  // must have rebuilt the cache from scratch (on top of the
  // constructor's initial arm).
  EXPECT_EQ(engine.stats().cache_repairs, 0);
  EXPECT_EQ(engine.stats().cache_rebuilds, 2);

  edges.edges.pop_back();
  const graph::CsrGraph pruned = graph::build_csr(edges);
  Query q;
  q.kind = QueryKind::kDistance;
  q.source = 0;
  q.target = 2;
  const QueryResult r = engine.submit(q).get();
  ASSERT_TRUE(r.ok);
  expect_matches_reference(pruned, r);
  EXPECT_EQ(r.distance, 2);  // the chord is gone
}

TEST(ServeEngine, ExportMetricsReflectsEpochHealth) {
  graph::EdgeList edges = rmat_edges(8, 13);
  ServeOptions opts;
  opts.workers = 1;
  QueryEngine engine(std::move(edges), opts);

  engine.insert_edge(0, 5);
  engine.publish_inserts();
  engine.insert_edge(1, 6);  // left pending on purpose
  engine.drain();

  obs::Registry metrics;
  engine.export_metrics(metrics);
  EXPECT_EQ(metrics.counter("serve.epochs.live"), 1);
  EXPECT_EQ(metrics.counter("serve.epochs.retired"), 1);
  EXPECT_EQ(metrics.counter("serve.epochs.pending_inserts"), 1);
  EXPECT_EQ(metrics.counter("serve.epochs.pending_removes"), 0);
  EXPECT_EQ(metrics.counter("serve.publish.delta"), 1);
  EXPECT_EQ(metrics.counter("serve.publish.full"), 0);
  EXPECT_EQ(metrics.counter("serve.cache.repairs"), 1);

  // The publish-duration histogram accounts for every publish exactly
  // once, and the timer carries the accumulated wall-clock.
  std::int64_t histogram_total = 0;
  for (const char* bucket :
       {"serve.publish.le_1ms", "serve.publish.le_10ms",
        "serve.publish.le_100ms", "serve.publish.le_1s",
        "serve.publish.le_10s", "serve.publish.le_inf"}) {
    histogram_total += metrics.counter(bucket);
  }
  EXPECT_EQ(histogram_total, 1);
  EXPECT_GE(metrics.timer("serve.publish").seconds, 0.0);
  EXPECT_EQ(metrics.timer("serve.publish").count, 1);
}

TEST(ServeEngine, EnqueueEventsCarryTheObservedEpoch) {
  graph::EdgeList edges = rmat_edges(8, 3);
  obs::MemorySink sink;
  ServeOptions opts;
  opts.workers = 1;
  opts.cache_enabled = false;
  opts.sink = &sink;
  QueryEngine engine(std::move(edges), opts);

  Query q;
  q.kind = QueryKind::kBfs;
  q.source = 1;
  (void)engine.submit(q).get();
  engine.insert_edge(0, 7);
  engine.publish_inserts();
  (void)engine.submit(q).get();
  engine.shutdown();

  std::vector<std::uint64_t> enqueue_epochs;
  for (const obs::QueryEvent& e : sink.queries) {
    if (e.stage == obs::QueryEvent::Stage::kEnqueue) {
      enqueue_epochs.push_back(e.epoch);
    }
  }
  ASSERT_EQ(enqueue_epochs.size(), 2u);
  EXPECT_EQ(enqueue_epochs[0], 0u);
  EXPECT_EQ(enqueue_epochs[1], 1u);
}

}  // namespace
}  // namespace bfsx::serve
