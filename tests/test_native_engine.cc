// Unit tests for the wall-clock engines.
#include "graph500/native_engine.h"

#include <gtest/gtest.h>

#include "bfs/validate.h"
#include "graph/builder.h"
#include "graph/graph_stats.h"
#include "graph/rmat.h"

namespace bfsx::graph500 {
namespace {

graph::CsrGraph test_graph() {
  graph::RmatParams p;
  p.scale = 11;
  return graph::build_csr(graph::generate_rmat(p));
}

TEST(NativeEngine, TopDownProducesValidTimedResult) {
  const graph::CsrGraph g = test_graph();
  const graph::vid_t root = graph::sample_roots(g, 1, 5)[0];
  const TimedBfs t = make_native_top_down_engine()(g, root);
  EXPECT_TRUE(bfs::validate_bfs(g, root, t.result).ok);
  EXPECT_GT(t.seconds, 0.0);
  EXPECT_LT(t.seconds, 30.0);  // wall clock, sane bound
}

TEST(NativeEngine, AllNativeEnginesAgreeOnLevels) {
  const graph::CsrGraph g = test_graph();
  const graph::vid_t root = graph::sample_roots(g, 1, 5)[0];
  const TimedBfs td = make_native_top_down_engine()(g, root);
  const TimedBfs bu = make_native_bottom_up_engine()(g, root);
  const TimedBfs hy = make_native_hybrid_engine({14, 24})(g, root);
  EXPECT_EQ(td.result.level, bu.result.level);
  EXPECT_EQ(td.result.level, hy.result.level);
}

TEST(NativeEngine, HybridValidatesThroughRunner) {
  const graph::CsrGraph g = test_graph();
  RunnerOptions opts;
  opts.num_roots = 4;
  const BenchmarkResult res =
      run_benchmark(g, make_native_hybrid_engine({14, 24}), opts);
  EXPECT_EQ(res.validation_failures, 0);
  EXPECT_GT(res.stats.harmonic_mean, 0.0);
}

TEST(NativeEngine, HybridRejectsInvalidPolicy) {
  EXPECT_THROW(make_native_hybrid_engine({0.1, 5}), std::invalid_argument);
}

}  // namespace
}  // namespace bfsx::graph500
