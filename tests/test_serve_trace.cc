// serve trace format: parse/print round-trips, line-numbered errors,
// deterministic generation, and replay bookkeeping.
#include "serve/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/builder.h"
#include "graph/rmat.h"
#include "serve/engine.h"

namespace bfsx::serve {
namespace {

std::vector<TraceOp> parse(const std::string& text) {
  std::istringstream in(text);
  return load_trace(in);
}

std::string what_of(const std::string& text) {
  try {
    (void)parse(text);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  return {};
}

TEST(ServeTrace, ParsesEveryOpKind) {
  const std::vector<TraceOp> ops = parse(
      "# a comment\n"
      "\n"
      "bfs 3\n"
      "dist 1 5\n"
      "reach 0 2 @native-td\n"
      "insert 4 9\n"
      "publish\n");
  ASSERT_EQ(ops.size(), 5u);
  EXPECT_EQ(ops[0].query.kind, QueryKind::kBfs);
  EXPECT_EQ(ops[0].query.source, 3);
  EXPECT_EQ(ops[1].query.kind, QueryKind::kDistance);
  EXPECT_EQ(ops[1].query.target, 5);
  EXPECT_EQ(ops[2].query.kind, QueryKind::kReachability);
  EXPECT_EQ(ops[2].query.engine, "native-td");
  EXPECT_EQ(ops[3].kind, TraceOp::Kind::kInsert);
  EXPECT_EQ(ops[3].u, 4);
  EXPECT_EQ(ops[3].v, 9);
  EXPECT_EQ(ops[4].kind, TraceOp::Kind::kPublish);
}

TEST(ServeTrace, SaveLoadRoundTrips) {
  const std::vector<TraceOp> ops = parse(
      "bfs 1 @native-hybrid\ndist 2 3\nreach 4 5\ninsert 6 7\npublish\n");
  std::ostringstream out;
  save_trace(ops, out);
  const std::vector<TraceOp> again = parse(out.str());
  ASSERT_EQ(again.size(), ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    EXPECT_EQ(again[i].kind, ops[i].kind) << i;
    EXPECT_EQ(again[i].query.kind, ops[i].query.kind) << i;
    EXPECT_EQ(again[i].query.source, ops[i].query.source) << i;
    EXPECT_EQ(again[i].query.target, ops[i].query.target) << i;
    EXPECT_EQ(again[i].query.engine, ops[i].query.engine) << i;
    EXPECT_EQ(again[i].u, ops[i].u) << i;
    EXPECT_EQ(again[i].v, ops[i].v) << i;
  }
}

TEST(ServeTrace, ErrorsNameTheLine) {
  EXPECT_NE(what_of("bfs 1\nfrobnicate 2\n").find("trace:2"),
            std::string::npos);
  EXPECT_NE(what_of("dist 1\n").find("trace:1"), std::string::npos);
  EXPECT_NE(what_of("bfs -7\n").find("trace:1"), std::string::npos);
  EXPECT_NE(what_of("bfs 1 2\n").find("trace:1"), std::string::npos);
  EXPECT_NE(what_of("bfs twelve\n").find("twelve"), std::string::npos);
  EXPECT_NE(what_of("dist 1 2 extra-token\n").find("@engine"),
            std::string::npos);
  EXPECT_NE(what_of("insert 1 99999999999999\n").find("out of range"),
            std::string::npos);
}

TEST(ServeTrace, GenerationIsDeterministic) {
  graph::RmatParams p;
  p.scale = 8;
  const graph::CsrGraph g = graph::build_csr(graph::generate_rmat(p));
  TraceGenOptions opts;
  opts.num_queries = 200;
  opts.insert_every = 40;
  opts.publish_every = 100;
  const std::vector<TraceOp> a = generate_query_trace(g, opts);
  const std::vector<TraceOp> b = generate_query_trace(g, opts);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.size(), 200u + 5u + 2u);  // queries + inserts + publishes
  std::size_t queries = 0;
  std::size_t inserts = 0;
  std::size_t publishes = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].query.source, b[i].query.source) << i;
    EXPECT_EQ(a[i].query.target, b[i].query.target) << i;
    switch (a[i].kind) {
      case TraceOp::Kind::kQuery: ++queries; break;
      case TraceOp::Kind::kInsert: ++inserts; break;
      case TraceOp::Kind::kPublish: ++publishes; break;
    }
    if (a[i].kind == TraceOp::Kind::kQuery) {
      EXPECT_GE(a[i].query.source, 0);
      EXPECT_LT(a[i].query.source, g.num_vertices());
    }
  }
  EXPECT_EQ(queries, 200u);
  EXPECT_EQ(inserts, 5u);
  EXPECT_EQ(publishes, 2u);

  TraceGenOptions reseeded = opts;
  reseeded.seed = opts.seed + 1;
  const std::vector<TraceOp> c = generate_query_trace(g, reseeded);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].kind != c[i].kind ||
              a[i].query.source != c[i].query.source ||
              a[i].query.target != c[i].query.target;
  }
  EXPECT_TRUE(differs) << "a different seed produced an identical trace";
}

TEST(ServeTrace, ReplayAccountsForEveryOp) {
  graph::RmatParams p;
  p.scale = 8;
  graph::EdgeList edges = graph::generate_rmat(p);
  const graph::CsrGraph g = graph::build_csr(edges);
  TraceGenOptions gen;
  gen.num_queries = 120;
  gen.insert_every = 30;
  gen.publish_every = 60;
  const std::vector<TraceOp> ops = generate_query_trace(g, gen);

  ServeOptions sopt;
  sopt.workers = 2;
  sopt.queue_capacity = ops.size();
  QueryEngine engine(std::move(edges), sopt);
  const ReplaySummary sum = replay_trace(engine, ops);

  EXPECT_EQ(sum.queries, 120);
  EXPECT_EQ(sum.served + sum.rejected, 120);
  EXPECT_EQ(sum.rejected, 0);  // capacity fits the whole trace
  EXPECT_EQ(sum.inserts, 4);
  EXPECT_EQ(sum.publishes, 2);
  EXPECT_EQ(static_cast<std::int64_t>(sum.latencies.size()), sum.served);
  EXPECT_GT(sum.wall_seconds, 0.0);
  EXPECT_EQ(engine.current_epoch(), 2u);
}

}  // namespace
}  // namespace bfsx::serve
