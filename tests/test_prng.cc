// Unit tests for the deterministic PRNG stack.
#include "graph/prng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace bfsx::graph {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro, IsDeterministic) {
  Xoshiro256ss a(99);
  Xoshiro256ss b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro, DoubleInUnitInterval) {
  Xoshiro256ss rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro, DoubleMeanIsNearHalf) {
  Xoshiro256ss rng(5);
  double sum = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Xoshiro, BoundedStaysInBound) {
  Xoshiro256ss rng(11);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1ULL << 40}) {
    for (int i = 0; i < 1'000; ++i) {
      EXPECT_LT(rng.next_bounded(bound), bound);
    }
  }
}

TEST(Xoshiro, BoundedZeroReturnsZero) {
  Xoshiro256ss rng(1);
  EXPECT_EQ(rng.next_bounded(0), 0u);
}

TEST(Xoshiro, BoundedCoversAllResidues) {
  Xoshiro256ss rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1'000; ++i) seen.insert(rng.next_bounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Xoshiro, BoundedIsApproximatelyUniform) {
  Xoshiro256ss rng(13);
  constexpr std::uint64_t kBound = 10;
  constexpr int kN = 100'000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kN; ++i) ++counts[rng.next_bounded(kBound)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kN / 10.0, kN / 10.0 * 0.1);
  }
}

TEST(Xoshiro, JumpProducesDisjointStream) {
  Xoshiro256ss a(42);
  Xoshiro256ss b(42);
  b.jump();
  int same = 0;
  for (int i = 0; i < 1'000; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace bfsx::graph
