// Unit tests for the N-device cluster and its BSP communication model
// (sim/cluster.h).
#include "sim/cluster.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace bfsx::sim {
namespace {

InterconnectSpec test_link() {
  InterconnectSpec link;
  link.latency_us = 5.0;
  link.bandwidth_gbps = 10.0;
  return link;
}

TEST(Cluster, HomogeneousFactoryBuildsNDevices) {
  const Cluster c = Cluster::homogeneous(make_sandy_bridge_cpu(), 4);
  EXPECT_EQ(c.num_devices(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(c.device(i).name(), "SandyBridgeCPU");
  }
}

TEST(Cluster, RejectsEmptyAndOutOfRange) {
  EXPECT_THROW(Cluster({}, InterconnectSpec{}), std::invalid_argument);
  EXPECT_THROW(Cluster::homogeneous(make_sandy_bridge_cpu(), 0),
               std::invalid_argument);
  const Cluster c = Cluster::homogeneous(make_sandy_bridge_cpu(), 2);
  EXPECT_NO_THROW(c.device(1));
  EXPECT_THROW(c.device(2), std::out_of_range);
}

TEST(Cluster, HeterogeneousDevicesKeepTheirSpecs) {
  std::vector<Device> devices;
  devices.emplace_back(make_sandy_bridge_cpu());
  devices.emplace_back(make_kepler_gpu());
  const Cluster c{std::move(devices), test_link()};
  EXPECT_EQ(c.device(0).name(), "SandyBridgeCPU");
  EXPECT_EQ(c.device(1).name(), "KeplerK20xGPU");
}

TEST(ClusterExchange, SingleDeviceIsFree) {
  const Cluster c = Cluster::homogeneous(make_sandy_bridge_cpu(), 1,
                                         test_link());
  const std::vector<std::size_t> none{0};
  EXPECT_EQ(c.exchange_seconds(none), 0.0);
  EXPECT_EQ(c.allreduce_seconds(16), 0.0);
}

TEST(ClusterExchange, EmptyExchangeStillPaysLatency) {
  // An all-to-all posts a message per peer even when nothing is queued;
  // this is the floor every multi-device superstep pays.
  const Cluster c = Cluster::homogeneous(make_sandy_bridge_cpu(), 4,
                                         test_link());
  const std::vector<std::size_t> none(4, 0);
  EXPECT_DOUBLE_EQ(c.exchange_seconds(none), 3 * 5.0e-6);
  EXPECT_GT(c.allreduce_seconds(16), 0.0);
}

TEST(ClusterExchange, BandwidthTermGrowsWithBytes) {
  const Cluster c = Cluster::homogeneous(make_sandy_bridge_cpu(), 2,
                                         test_link());
  const std::vector<std::size_t> small{1'000, 1'000};
  const std::vector<std::size_t> big{1'000'000, 1'000'000};
  EXPECT_LT(c.exchange_seconds(small), c.exchange_seconds(big));
  // 2 devices: each sends 1MB and receives 1MB -> 2MB over 10 GB/s.
  EXPECT_NEAR(c.exchange_seconds(big), 5.0e-6 + 2.0e6 / 10e9, 1e-12);
}

TEST(ClusterExchange, SlowestDeviceGatesTheStep) {
  const Cluster c = Cluster::homogeneous(make_sandy_bridge_cpu(), 3,
                                         test_link());
  // Device 0 ships 3MB to device 1; everyone else idles. The busy pair
  // gates the superstep: latency + 3MB / 10 GB/s.
  std::vector<std::vector<std::size_t>> bytes(
      3, std::vector<std::size_t>(3, 0));
  bytes[0][1] = 3'000'000;
  EXPECT_NEAR(c.exchange_seconds(bytes), 2 * 5.0e-6 + 3.0e6 / 10e9, 1e-12);
}

TEST(ClusterExchange, MatrixShapeIsChecked) {
  const Cluster c = Cluster::homogeneous(make_sandy_bridge_cpu(), 2,
                                         test_link());
  EXPECT_THROW(c.exchange_seconds(std::vector<std::vector<std::size_t>>{}),
               std::invalid_argument);
  const std::vector<std::size_t> wrong{1};
  EXPECT_THROW(c.exchange_seconds(wrong), std::invalid_argument);
}

TEST(Cluster, PaperClusterIsCpuBased) {
  const Cluster c = make_paper_cluster(8);
  EXPECT_EQ(c.num_devices(), 8u);
  EXPECT_EQ(c.device(0).name(), "SandyBridgeCPU");
  EXPECT_GT(c.interconnect().bandwidth_gbps, 0.0);
}

}  // namespace
}  // namespace bfsx::sim
