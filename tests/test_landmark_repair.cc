// Tests for LandmarkCache::repaired() (serve/landmark_cache.h): the
// incremental re-arm the engine uses on insert-only publishes. The
// contract under test is exactness — a repaired cache's rows must be
// cell-for-cell identical to build_with() recomputed from scratch over
// the new graph with the same landmark set — plus the cost claim that
// repair work scales with the vertices whose distance actually
// changed, not with |V| * lanes.
#include "serve/landmark_cache.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "graph/builder.h"
#include "graph/delta_csr.h"
#include "graph/generators.h"
#include "graph/prng.h"
#include "graph/rmat.h"
#include "graph/view.h"

namespace bfsx::serve {
namespace {

using graph::CsrGraph;
using graph::CsrGraphView;
using graph::Edge;
using graph::EdgeList;
using graph::vid_t;

CsrGraph rebuild(const std::set<std::pair<vid_t, vid_t>>& pairs, vid_t n) {
  EdgeList el;
  el.num_vertices = n;
  for (const auto& [u, v] : pairs) el.add(u, v);
  return graph::build_csr(std::move(el));
}

std::set<std::pair<vid_t, vid_t>> undirected_pairs(const CsrGraph& g) {
  std::set<std::pair<vid_t, vid_t>> pairs;
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    for (const vid_t w : g.out_neighbors(u)) {
      pairs.emplace(std::min(u, w), std::max(u, w));
    }
  }
  return pairs;
}

/// Every covered (landmark, target) pair must answer identically; the
/// cache's public surface exposes exactly the rows repair maintains.
void expect_rows_identical(const LandmarkCache& repaired,
                           const LandmarkCache& rebuilt, vid_t n) {
  ASSERT_EQ(repaired.landmarks(), rebuilt.landmarks());
  ASSERT_EQ(repaired.epoch(), rebuilt.epoch());
  for (const vid_t l : rebuilt.landmarks()) {
    for (vid_t t = 0; t < n; ++t) {
      const auto a = repaired.distance(l, t);
      const auto b = rebuilt.distance(l, t);
      ASSERT_EQ(a.has_value(), b.has_value()) << l << " -> " << t;
      if (a.has_value()) ASSERT_EQ(*a, *b) << l << " -> " << t;
    }
  }
}

TEST(LandmarkRepair, FuzzedInsertBatchesMatchFullRecompute) {
  graph::RmatParams p;
  p.scale = 9;
  p.edgefactor = 6;
  p.seed = 91;
  CsrGraph g = graph::build_csr(graph::generate_rmat(p));
  auto oracle = undirected_pairs(g);

  LandmarkCache cache = LandmarkCache::build(CsrGraphView(g), 0, 12);
  ASSERT_FALSE(cache.landmarks().empty());
  const std::vector<vid_t> landmarks = cache.landmarks();

  graph::Xoshiro256ss rng(2026);
  for (std::uint64_t round = 1; round <= 8; ++round) {
    // 1..8 directed insert ops; occasionally grow the vertex set.
    const std::size_t batch = 1 + rng.next_bounded(8);
    std::vector<Edge> inserts;
    vid_t n = g.num_vertices();
    for (std::size_t i = 0; i < batch; ++i) {
      const auto u = static_cast<vid_t>(
          rng.next_bounded(static_cast<std::uint64_t>(n)));
      vid_t v;
      if (rng.next_bounded(8) == 0) {
        v = n;  // grow by one
        n = static_cast<vid_t>(n + 1);
      } else {
        v = static_cast<vid_t>(
            rng.next_bounded(static_cast<std::uint64_t>(n)));
      }
      if (u == v) continue;  // self-loops are publish no-ops
      inserts.push_back({u, v});
      oracle.emplace(std::min(u, v), std::max(u, v));
    }

    CsrGraph next = rebuild(oracle, n);
    RepairStats rs;
    const LandmarkCache repaired =
        cache.repaired(CsrGraphView(next), inserts, round, &rs);
    const LandmarkCache recomputed =
        LandmarkCache::build_with(CsrGraphView(next), round, landmarks);
    expect_rows_identical(repaired, recomputed, next.num_vertices());
    EXPECT_EQ(repaired.landmarks(), landmarks);

    g = std::move(next);
    cache = repaired;  // chain: repair on top of repair stays exact
  }
}

TEST(LandmarkRepair, RepairOverDeltaEpochMatchesRepairOverFlat) {
  // The serve layer hands repaired() the DeltaCsr overlay, not a flat
  // rebuild; both views of the same graph must repair identically.
  const auto base = std::make_shared<const CsrGraph>(
      graph::build_csr(graph::make_grid(16, 16)));
  const LandmarkCache cache = LandmarkCache::build(CsrGraphView(*base), 0, 8);

  const std::vector<Edge> inserts = {{0, 255}, {10, 200}};
  const graph::DeltaCsr d = graph::DeltaCsr::apply(base, nullptr, inserts, {});
  const CsrGraph flat = graph::build_csr(d.materialize_edges());

  const LandmarkCache via_delta = cache.repaired(d, inserts, 1);
  const LandmarkCache via_flat = cache.repaired(CsrGraphView(flat), inserts, 1);
  expect_rows_identical(via_delta, via_flat, flat.num_vertices());
  expect_rows_identical(
      via_delta, LandmarkCache::build_with(d, 1, cache.landmarks()),
      flat.num_vertices());
}

TEST(LandmarkRepair, CostScalesWithAffectedVerticesNotGraphSize) {
  // 40x40 grid, 1600 vertices. A duplicate insert changes no distance
  // and must do zero repair work; a short local chord must relax far
  // fewer cells than lanes * |V| (the full-recompute cost floor).
  const CsrGraph g = graph::build_csr(graph::make_grid(40, 40));
  const vid_t n = g.num_vertices();
  const LandmarkCache cache = LandmarkCache::build(CsrGraphView(g), 0, 8);
  const std::size_t lanes = cache.landmarks().size();
  ASSERT_GT(lanes, 0u);

  // Duplicate of an existing edge: no distance can decrease.
  {
    const std::vector<Edge> dup = {{0, 1}};
    RepairStats rs;
    (void)cache.repaired(CsrGraphView(g), dup, 1, &rs);
    EXPECT_EQ(rs.seeds, 0u);
    EXPECT_EQ(rs.relaxed, 0u);
    EXPECT_EQ(rs.lowered, 0u);
  }

  // Chord between two vertices at distance 2 (grid corners of one
  // cell): only a local neighbourhood can improve.
  {
    const std::vector<Edge> chord = {{0, 41}};  // (0,0) -> (1,1)
    auto pairs = undirected_pairs(g);
    pairs.emplace(0, 41);
    const CsrGraph next = rebuild(pairs, n);
    RepairStats rs;
    const LandmarkCache repaired =
        cache.repaired(CsrGraphView(next), chord, 1, &rs);
    expect_rows_identical(
        repaired,
        LandmarkCache::build_with(CsrGraphView(next), 1, cache.landmarks()),
        n);
    // Full recompute touches every cell: lanes * n. Repair must stay
    // an order of magnitude under that.
    EXPECT_LT(rs.relaxed, lanes * static_cast<std::size_t>(n) / 10);
  }
}

TEST(LandmarkRepair, VertexGrowthRepairsExactly) {
  const CsrGraph g = graph::build_csr(graph::make_star(32));
  const LandmarkCache cache = LandmarkCache::build(CsrGraphView(g), 0, 4);

  // Attach a two-vertex tail past the current vertex count.
  const std::vector<Edge> inserts = {{5, 33}, {33, 34}};
  auto pairs = undirected_pairs(g);
  pairs.emplace(5, 33);
  pairs.emplace(33, 34);
  const CsrGraph next = rebuild(pairs, 35);

  RepairStats rs;
  const LandmarkCache repaired =
      cache.repaired(CsrGraphView(next), inserts, 1, &rs);
  expect_rows_identical(
      repaired,
      LandmarkCache::build_with(CsrGraphView(next), 1, cache.landmarks()),
      next.num_vertices());
  // The grown vertices start unreachable and must have been lowered in.
  EXPECT_GT(rs.lowered, 0u);
  for (const vid_t l : cache.landmarks()) {
    EXPECT_TRUE(repaired.distance(l, 34).has_value());
  }
}

TEST(LandmarkRepair, EmptyCacheRepairsToEmptyCache) {
  const CsrGraph g = graph::build_csr(graph::make_path(8));
  const LandmarkCache cache = LandmarkCache::build(CsrGraphView(g), 0, 0);
  ASSERT_TRUE(cache.landmarks().empty());
  RepairStats rs;
  const std::vector<Edge> inserts = {{0, 7}};
  const LandmarkCache repaired =
      cache.repaired(CsrGraphView(g), inserts, 1, &rs);
  EXPECT_TRUE(repaired.landmarks().empty());
  EXPECT_EQ(rs.lanes, 0u);
  EXPECT_FALSE(repaired.distance(0, 7).has_value());
}

}  // namespace
}  // namespace bfsx::serve
