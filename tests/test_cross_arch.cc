// Unit tests for the cross-architecture executor (Algorithm 3).
#include "core/cross_arch_bfs.h"

#include <gtest/gtest.h>

#include "bfs/validate.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "graph/rmat.h"

namespace bfsx::core {
namespace {

struct Fixture {
  graph::CsrGraph g;
  sim::Device cpu{sim::make_sandy_bridge_cpu()};
  sim::Device gpu{sim::make_kepler_gpu()};
  sim::InterconnectSpec link;
  graph::vid_t root;

  Fixture() {
    graph::RmatParams p;
    p.scale = 13;
    g = graph::build_csr(graph::generate_rmat(p));
    root = graph::sample_roots(g, 1, 77)[0];
  }
};

TEST(CrossArch, ProducesValidBfs) {
  Fixture f;
  const CombinationRun run =
      run_cross_arch(f.g, f.root, f.cpu, f.gpu, f.link, {20, 30}, {5, 200});
  EXPECT_TRUE(bfs::validate_bfs(f.g, f.root, run.result).ok);
  EXPECT_GT(run.seconds, 0.0);
}

TEST(CrossArch, StartsOnHostEndsOnAccelerator) {
  Fixture f;
  const CombinationRun run =
      run_cross_arch(f.g, f.root, f.cpu, f.gpu, f.link, {20, 30}, {5, 200});
  ASSERT_GE(run.levels.size(), 3u);
  EXPECT_EQ(run.levels.front().device, "SandyBridgeCPU");
  EXPECT_EQ(run.levels.front().outcome.direction, bfs::Direction::kTopDown);
  EXPECT_EQ(run.levels.back().device, "KeplerK20xGPU");
}

TEST(CrossArch, NeverReturnsToHost) {
  Fixture f;
  const CombinationRun run =
      run_cross_arch(f.g, f.root, f.cpu, f.gpu, f.link, {20, 30}, {5, 200});
  bool left_host = false;
  for (const ExecutedLevel& lvl : run.levels) {
    if (lvl.device == "KeplerK20xGPU") left_host = true;
    if (left_host) EXPECT_EQ(lvl.device, "KeplerK20xGPU");
  }
  EXPECT_TRUE(left_host);
}

TEST(CrossArch, ChargesExactlyOneTransfer) {
  Fixture f;
  const CombinationRun run =
      run_cross_arch(f.g, f.root, f.cpu, f.gpu, f.link, {20, 30}, {5, 200});
  EXPECT_DOUBLE_EQ(
      run.transfer_seconds,
      sim::transfer_seconds(f.link, sim::handoff_bytes(f.g.num_vertices())));
}

TEST(CrossArch, AccelSwitchesBackToTopDownAtTheEnd) {
  // The CPUTD+GPUCB behaviour of Table IV: the last levels run top-down
  // on the GPU.
  Fixture f;
  const CombinationRun run =
      run_cross_arch(f.g, f.root, f.cpu, f.gpu, f.link, {20, 30}, {14, 24});
  ASSERT_GE(run.levels.size(), 4u);
  const ExecutedLevel& last = run.levels.back();
  EXPECT_EQ(last.device, "KeplerK20xGPU");
  EXPECT_EQ(last.outcome.direction, bfs::Direction::kTopDown);
}

TEST(CrossArch, BuOnlyVariantNeverRunsTopDownOnAccel) {
  Fixture f;
  const CombinationRun run =
      run_cross_arch_bu_only(f.g, f.root, f.cpu, f.gpu, f.link, {20, 30});
  EXPECT_TRUE(bfs::validate_bfs(f.g, f.root, run.result).ok);
  for (const ExecutedLevel& lvl : run.levels) {
    if (lvl.device == "KeplerK20xGPU") {
      EXPECT_EQ(lvl.outcome.direction, bfs::Direction::kBottomUp);
    }
  }
}

TEST(CrossArch, CpuTdPlusGpuCbBeatsCpuTdPlusGpuBu) {
  // Table IV: CPUTD+GPUCB (36.1x) edges out CPUTD+GPUBU (32.8x) by
  // switching the tail levels back to top-down.
  Fixture f;
  const double with_cb =
      run_cross_arch(f.g, f.root, f.cpu, f.gpu, f.link, {20, 30}, {14, 24})
          .seconds;
  const double bu_only =
      run_cross_arch_bu_only(f.g, f.root, f.cpu, f.gpu, f.link, {20, 30})
          .seconds;
  EXPECT_LT(with_cb, bu_only);
}

TEST(CrossArch, HandoffNeverTriggeredStaysOnHost) {
  // A handoff policy that always chooses top-down keeps the whole run
  // on the CPU and charges no transfer.
  Fixture f;
  const CombinationRun run = run_cross_arch(f.g, f.root, f.cpu, f.gpu, f.link,
                                            always_top_down(), {14, 24});
  EXPECT_DOUBLE_EQ(run.transfer_seconds, 0.0);
  for (const ExecutedLevel& lvl : run.levels) {
    EXPECT_EQ(lvl.device, "SandyBridgeCPU");
  }
}

TEST(CrossArch, ResultAgreesWithSingleDeviceRun) {
  Fixture f;
  const CombinationRun cross =
      run_cross_arch(f.g, f.root, f.cpu, f.gpu, f.link, {20, 30}, {14, 24});
  const CombinationRun single = run_combination(f.g, f.root, f.cpu, {14, 24});
  EXPECT_EQ(cross.result.level, single.result.level);
  EXPECT_EQ(cross.result.reached, single.result.reached);
  EXPECT_EQ(cross.result.edges_in_component,
            single.result.edges_in_component);
}

}  // namespace
}  // namespace bfsx::core
