// Unit tests for edge-list serialisation (text and binary).
#include "graph/io.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "graph/generators.h"
#include "graph/rmat.h"

namespace bfsx::graph {
namespace {

TEST(GraphIoText, RoundTripsExactly) {
  const EdgeList el = make_erdos_renyi(50, 200, 3);
  std::stringstream ss;
  write_edge_list_text(ss, el);
  const EdgeList back = read_edge_list_text(ss);
  EXPECT_EQ(back.num_vertices, el.num_vertices);
  EXPECT_EQ(back.edges, el.edges);
}

TEST(GraphIoText, HeaderFixesIsolatedTailVertices) {
  // Vertices 3..9 have no edges; only the header preserves them.
  EdgeList el;
  el.num_vertices = 10;
  el.add(0, 1);
  el.add(1, 2);
  std::stringstream ss;
  write_edge_list_text(ss, el);
  const EdgeList back = read_edge_list_text(ss);
  EXPECT_EQ(back.num_vertices, 10);
}

TEST(GraphIoText, InfersVertexCountWithoutHeader) {
  std::stringstream ss("0 1\n1 7\n");
  const EdgeList el = read_edge_list_text(ss);
  EXPECT_EQ(el.num_vertices, 8);
  EXPECT_EQ(el.num_edges(), 2);
}

TEST(GraphIoText, SkipsCommentsAndBlankLines) {
  std::stringstream ss("# comment\n\n0 1\n# another\n2 3\n");
  const EdgeList el = read_edge_list_text(ss);
  EXPECT_EQ(el.num_edges(), 2);
}

TEST(GraphIoText, RejectsMalformedLine) {
  std::stringstream ss("0 1\nnot an edge\n");
  EXPECT_THROW(read_edge_list_text(ss), std::runtime_error);
}

TEST(GraphIoText, RejectsEdgeBeyondDeclaredCount) {
  std::stringstream ss("# vertices: 2\n0 5\n");
  EXPECT_THROW(read_edge_list_text(ss), std::runtime_error);
}

TEST(GraphIoText, OutOfRangeErrorNamesTheOffendingLine) {
  std::stringstream ss("# vertices: 4\n0 1\n2 3\n1 9\n");
  try {
    (void)read_edge_list_text(ss);
    FAIL() << "expected out-of-range edge to throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 4"), std::string::npos) << what;
    EXPECT_NE(what.find("(1, 9)"), std::string::npos) << what;
    EXPECT_NE(what.find("4"), std::string::npos) << what;
  }
}

TEST(GraphIoText, BoundaryEndpointEqualToCountIsRejected) {
  // Vertex ids are 0-based: id N is the first invalid one.
  std::stringstream bad("# vertices: 4\n0 4\n");
  EXPECT_THROW(read_edge_list_text(bad), std::runtime_error);
  std::stringstream ok("# vertices: 4\n0 3\n");
  EXPECT_EQ(read_edge_list_text(ok).num_vertices, 4);
}

TEST(GraphIoText, HeaderAfterEdgesStillEnforcesTheBound) {
  std::stringstream ss("0 5\n# vertices: 2\n");
  EXPECT_THROW(read_edge_list_text(ss), std::runtime_error);
}

TEST(GraphIoBinary, RoundTripsExactly) {
  RmatParams p;
  p.scale = 10;
  const EdgeList el = generate_rmat(p);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_edge_list_binary(ss, el);
  const EdgeList back = read_edge_list_binary(ss);
  EXPECT_EQ(back.num_vertices, el.num_vertices);
  EXPECT_EQ(back.edges, el.edges);
}

TEST(GraphIoBinary, RejectsBadMagic) {
  std::stringstream ss("GARBAGE!and more");
  EXPECT_THROW(read_edge_list_binary(ss), std::runtime_error);
}

TEST(GraphIoBinary, RejectsTruncatedPayload) {
  const EdgeList el = make_erdos_renyi(20, 100, 1);
  std::stringstream full(std::ios::in | std::ios::out | std::ios::binary);
  write_edge_list_binary(full, el);
  const std::string bytes = full.str();
  std::stringstream cut(bytes.substr(0, bytes.size() - 8),
                        std::ios::in | std::ios::binary);
  EXPECT_THROW(read_edge_list_binary(cut), std::runtime_error);
}

TEST(GraphIoFile, ExtensionSelectsFormat) {
  const EdgeList el = make_erdos_renyi(30, 90, 7);
  const std::string text_path = ::testing::TempDir() + "/bfsx_io_test.el";
  const std::string bin_path = ::testing::TempDir() + "/bfsx_io_test.bel";
  save_edge_list(text_path, el);
  save_edge_list(bin_path, el);
  EXPECT_EQ(load_edge_list(text_path).edges, el.edges);
  EXPECT_EQ(load_edge_list(bin_path).edges, el.edges);
}

TEST(GraphIoFile, ThrowsOnMissingFile) {
  EXPECT_THROW(load_edge_list("/nonexistent/nowhere.el"), std::runtime_error);
}

}  // namespace
}  // namespace bfsx::graph
