// Unit tests for the Graph 500 statistics kernel.
#include "graph500/teps.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace bfsx::graph500 {
namespace {

TEST(Quantile, EndpointsAndMedian) {
  const std::vector<double> v = {5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 1);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 3);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 5);
}

TEST(Quantile, InterpolatesBetweenRanks) {
  const std::vector<double> v = {0, 10};
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile(v, 0.75), 7.5);
}

TEST(Quantile, RejectsBadInputs) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile(std::vector<double>{1.0}, 1.5), std::invalid_argument);
}

TEST(TepsStats, SingleValue) {
  const TepsStats s = compute_teps_stats(std::vector<double>{2.0});
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 2.0);
  EXPECT_DOUBLE_EQ(s.harmonic_mean, 2.0);
  EXPECT_DOUBLE_EQ(s.harmonic_stddev, 0.0);
  EXPECT_EQ(s.count, 1u);
}

TEST(TepsStats, HarmonicMeanOfKnownPair) {
  // HM(1, 3) = 2 / (1 + 1/3) = 1.5
  const TepsStats s = compute_teps_stats(std::vector<double>{1.0, 3.0});
  EXPECT_DOUBLE_EQ(s.harmonic_mean, 1.5);
}

TEST(TepsStats, HarmonicMeanIsBelowArithmetic) {
  const std::vector<double> v = {1, 2, 3, 4, 100};
  const TepsStats s = compute_teps_stats(v);
  double arith = 0;
  for (double x : v) arith += x;
  arith /= 5;
  EXPECT_LT(s.harmonic_mean, arith);
  EXPECT_GE(s.harmonic_mean, s.min);
}

TEST(TepsStats, QuartilesOrdered) {
  const std::vector<double> v = {9, 1, 8, 2, 7, 3, 6, 4, 5};
  const TepsStats s = compute_teps_stats(v);
  EXPECT_LE(s.min, s.first_quartile);
  EXPECT_LE(s.first_quartile, s.median);
  EXPECT_LE(s.median, s.third_quartile);
  EXPECT_LE(s.third_quartile, s.max);
}

TEST(TepsStats, RejectsNonPositiveRates) {
  EXPECT_THROW(compute_teps_stats(std::vector<double>{1.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(compute_teps_stats(std::vector<double>{-1.0}),
               std::invalid_argument);
  EXPECT_THROW(compute_teps_stats({}), std::invalid_argument);
}

TEST(TepsStats, FormatContainsGraph500Keys) {
  const std::string out =
      format_teps_stats(compute_teps_stats(std::vector<double>{1.0, 2.0}));
  EXPECT_NE(out.find("harmonic_mean_TEPS"), std::string::npos);
  EXPECT_NE(out.find("median_TEPS"), std::string::npos);
}

}  // namespace
}  // namespace bfsx::graph500
