// Tests for the GraphView concept layer (graph/view.h): the
// zero-overhead CsrGraphView adapter, materialize(), view-based root
// sampling, and — the refactor's core contract — equality of the
// templated kernels instantiated on CsrGraphView with the historical
// CsrGraph entry points.
#include "graph/view.h"

#include <gtest/gtest.h>

#include <omp.h>

#include <vector>

#include "bfs/drivers.h"
#include "bfs/state_pool.h"
#include "bfs/validate.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "graph/rmat.h"

namespace bfsx::graph {
namespace {

CsrGraph rmat10() {
  RmatParams p;
  p.scale = 10;
  p.edgefactor = 16;
  p.seed = 7;
  return build_csr(generate_rmat(p));
}

TEST(CsrGraphView, ForwardsEveryAccessorVerbatim) {
  const CsrGraph g = rmat10();
  const CsrGraphView view(g);
  EXPECT_EQ(view.num_vertices(), g.num_vertices());
  EXPECT_EQ(view.num_edges(), g.num_edges());
  EXPECT_EQ(view.is_symmetric(), g.is_symmetric());
  EXPECT_EQ(&view.csr(), &g);
  for (vid_t v = 0; v < g.num_vertices(); v += 97) {
    EXPECT_EQ(view.out_degree(v), g.out_degree(v)) << v;
    EXPECT_EQ(view.in_degree(v), g.in_degree(v)) << v;
  }
}

TEST(CsrGraphView, OutEnumerationPreservesCsrRowOrder) {
  const CsrGraph g = rmat10();
  const CsrGraphView view(g);
  for (vid_t v = 0; v < g.num_vertices(); v += 31) {
    std::vector<vid_t> via_view;
    view.for_each_out_neighbor(v, [&via_view](vid_t w) {
      via_view.push_back(w);
    });
    const auto row = g.out_neighbors(v);
    ASSERT_EQ(via_view.size(), row.size()) << v;
    for (std::size_t i = 0; i < via_view.size(); ++i) {
      EXPECT_EQ(via_view[i], row[i]) << v;
    }
  }
}

TEST(CsrGraphView, InEnumerationHonoursEarlyExit) {
  const CsrGraph g = rmat10();
  const CsrGraphView view(g);
  // Find a vertex with at least two in-neighbours and stop after one.
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (g.in_degree(v) < 2) continue;
    int calls = 0;
    view.for_each_in_neighbor(v, [&calls](vid_t) {
      ++calls;
      return false;  // stop immediately
    });
    EXPECT_EQ(calls, 1);
    return;
  }
  FAIL() << "graph has no vertex with in-degree >= 2";
}

TEST(Materialize, RoundTripsTheCsrGraph) {
  const CsrGraph g = build_csr(make_grid(5, 7));
  const CsrGraph rebuilt = build_csr(materialize(CsrGraphView(g)));
  ASSERT_EQ(rebuilt.num_vertices(), g.num_vertices());
  ASSERT_EQ(rebuilt.num_edges(), g.num_edges());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const auto a = g.out_neighbors(v);
    const auto b = rebuilt.out_neighbors(v);
    ASSERT_EQ(a.size(), b.size()) << v;
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << v;
  }
}

TEST(SampleViewRoots, MatchesCsrSamplingStream) {
  const CsrGraph g = rmat10();
  // Same seed, same rejection rule, same PRNG — the root sets must be
  // identical, so scenario benchmarks are root-compatible with CSR ones.
  EXPECT_EQ(sample_view_roots(CsrGraphView(g), 16, 500),
            sample_roots(g, 16, 500));
  EXPECT_EQ(sample_view_roots(CsrGraphView(g), 1, 7), sample_roots(g, 1, 7));
}

TEST(SampleViewRoots, RejectsIsolatedVerticesAndBadCounts) {
  const CsrGraph g = build_csr(make_two_cliques(8));
  for (const vid_t r : sample_view_roots(CsrGraphView(g), 32, 3)) {
    EXPECT_GT(g.out_degree(r), 0);
  }
  EXPECT_THROW((void)sample_view_roots(CsrGraphView(g), -1, 3),
               std::invalid_argument);
}

/// The templated drivers instantiated on CsrGraphView and the CsrGraph
/// overloads (which forward through the adapter) must produce identical
/// per-level counters — |V|cq, |E|cq, BU scan counts, next — and
/// identical level maps. Parents are compared only under one thread
/// (parallel claims tie-break by schedule).
TEST(ViewKernels, CsrViaViewBitEqualsCsrOverloads) {
  const CsrGraph g = rmat10();
  const CsrGraphView view(g);
  for (const vid_t root : sample_roots(g, 3, 21)) {
    bfs::TraversalLog log_csr_td;
    bfs::TraversalLog log_view_td;
    const bfs::BfsResult csr_td = bfs::run_top_down(g, root, &log_csr_td);
    const bfs::BfsResult view_td =
        bfs::run_top_down(view, root, &log_view_td);

    bfs::TraversalLog log_csr_bu;
    bfs::TraversalLog log_view_bu;
    const bfs::BfsResult csr_bu = bfs::run_bottom_up(g, root, &log_csr_bu);
    const bfs::BfsResult view_bu =
        bfs::run_bottom_up(view, root, &log_view_bu);

    EXPECT_TRUE(bfs::same_levels(csr_td, view_td)) << root;
    EXPECT_TRUE(bfs::same_levels(csr_bu, view_bu)) << root;
    EXPECT_EQ(csr_td.reached, view_td.reached);
    EXPECT_EQ(csr_td.edges_in_component, view_td.edges_in_component);

    ASSERT_EQ(log_csr_td.levels.size(), log_view_td.levels.size());
    for (std::size_t i = 0; i < log_csr_td.levels.size(); ++i) {
      const bfs::LevelRecord& a = log_csr_td.levels[i];
      const bfs::LevelRecord& b = log_view_td.levels[i];
      EXPECT_EQ(a.frontier_vertices, b.frontier_vertices) << i;
      EXPECT_EQ(a.frontier_edges, b.frontier_edges) << i;
      EXPECT_EQ(a.next_vertices, b.next_vertices) << i;
    }
    ASSERT_EQ(log_csr_bu.levels.size(), log_view_bu.levels.size());
    for (std::size_t i = 0; i < log_csr_bu.levels.size(); ++i) {
      const bfs::LevelRecord& a = log_csr_bu.levels[i];
      const bfs::LevelRecord& b = log_view_bu.levels[i];
      EXPECT_EQ(a.frontier_vertices, b.frontier_vertices) << i;
      EXPECT_EQ(a.frontier_edges, b.frontier_edges) << i;
      EXPECT_EQ(a.bottom_up_scanned, b.bottom_up_scanned) << i;
      EXPECT_EQ(a.next_vertices, b.next_vertices) << i;
    }

    if (omp_get_max_threads() == 1) {
      EXPECT_EQ(csr_td.parent, view_td.parent) << root;
      EXPECT_EQ(csr_bu.parent, view_bu.parent) << root;
    }
  }
}

TEST(ViewKernels, SerialDriverIsDeterministicAcrossRepresentations) {
  const CsrGraph g = rmat10();
  const vid_t root = sample_roots(g, 1, 5)[0];
  const bfs::BfsResult a = bfs::run_serial(g, root);
  const bfs::BfsResult b = bfs::run_serial(CsrGraphView(g), root);
  // Serial order is fully deterministic, so even parents must agree.
  EXPECT_EQ(a.parent, b.parent);
  EXPECT_EQ(a.level, b.level);
  EXPECT_EQ(a.edges_in_component, b.edges_in_component);
}

TEST(ViewValidate, ViewRunPassesViewAndCsrValidators) {
  const CsrGraph g = rmat10();
  const CsrGraphView view(g);
  const vid_t root = sample_roots(g, 1, 5)[0];
  const bfs::BfsResult r = bfs::run_top_down(view, root);
  EXPECT_TRUE(bfs::validate_bfs(view, root, r).ok);
  EXPECT_TRUE(bfs::validate_bfs(g, root, r).ok);
}

TEST(StatePool, AcquiresByVertexCountForViewTraversals) {
  bfs::StatePool pool;
  {
    const bfs::StatePool::Lease lease = pool.acquire(vid_t{16}, vid_t{3});
    EXPECT_EQ(lease->reached, 1);
    EXPECT_EQ(lease->parent[3], 3);
    EXPECT_EQ(lease->parent.size(), 16u);
  }
  EXPECT_EQ(pool.created(), 1u);
  EXPECT_EQ(pool.idle(), 1u);
  // Re-arm for a different size: reset must regrow the maps.
  const bfs::StatePool::Lease again = pool.acquire(vid_t{32}, vid_t{9});
  EXPECT_EQ(again->parent.size(), 32u);
  EXPECT_EQ(pool.created(), 1u);
}

}  // namespace
}  // namespace bfsx::graph
