// Unit tests for CSR storage and edge-list -> CSR construction.
#include "graph/builder.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "graph/csr.h"
#include "graph/prng.h"

namespace bfsx::graph {
namespace {

EdgeList triangle_plus_tail() {
  // 0-1, 1-2, 2-0, 2-3 (undirected intent)
  EdgeList el;
  el.num_vertices = 4;
  el.add(0, 1);
  el.add(1, 2);
  el.add(2, 0);
  el.add(2, 3);
  return el;
}

TEST(Builder, SymmetrizedCountsBothDirections) {
  const CsrGraph g = build_csr(triangle_plus_tail());
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 8);  // 4 undirected edges -> 8 directed
  EXPECT_TRUE(g.is_symmetric());
}

TEST(Builder, NeighborsAreSortedAndComplete) {
  const CsrGraph g = build_csr(triangle_plus_tail());
  const std::vector<vid_t> n2(g.out_neighbors(2).begin(),
                              g.out_neighbors(2).end());
  EXPECT_EQ(n2, (std::vector<vid_t>{0, 1, 3}));
  const std::vector<vid_t> n3(g.out_neighbors(3).begin(),
                              g.out_neighbors(3).end());
  EXPECT_EQ(n3, (std::vector<vid_t>{2}));
}

TEST(Builder, HasEdgeBothDirectionsAfterSymmetrize) {
  const CsrGraph g = build_csr(triangle_plus_tail());
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_TRUE(g.has_edge(3, 2));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(Builder, RemovesSelfLoops) {
  EdgeList el;
  el.num_vertices = 3;
  el.add(0, 0);
  el.add(1, 1);
  el.add(0, 1);
  const CsrGraph g = build_csr(std::move(el));
  EXPECT_EQ(g.num_edges(), 2);  // just 0<->1
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(Builder, KeepsSelfLoopsWhenAsked) {
  EdgeList el;
  el.num_vertices = 2;
  el.add(0, 0);
  el.add(0, 1);
  BuildOptions opts;
  opts.remove_self_loops = false;
  const CsrGraph g = build_csr(std::move(el), opts);
  EXPECT_TRUE(g.has_edge(0, 0));
}

TEST(Builder, DeduplicatesParallelEdges) {
  EdgeList el;
  el.num_vertices = 2;
  for (int i = 0; i < 5; ++i) el.add(0, 1);
  const CsrGraph g = build_csr(std::move(el));
  EXPECT_EQ(g.num_edges(), 2);  // one each way
  EXPECT_EQ(g.out_degree(0), 1);
}

TEST(Builder, DuplicatesSurviveWhenDedupOff) {
  EdgeList el;
  el.num_vertices = 2;
  el.add(0, 1);
  el.add(0, 1);
  BuildOptions opts;
  opts.deduplicate = false;
  const CsrGraph g = build_csr(std::move(el), opts);
  EXPECT_EQ(g.out_degree(0), 2);
}

TEST(Builder, RejectsOutOfRangeEndpoints) {
  EdgeList el;
  el.num_vertices = 2;
  el.add(0, 5);
  EXPECT_THROW(build_csr(std::move(el)), std::out_of_range);
}

TEST(Builder, EmptyGraphBuilds) {
  EdgeList el;
  el.num_vertices = 3;
  const CsrGraph g = build_csr(std::move(el));
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.out_degree(1), 0);
}

TEST(Builder, DirectedKeepsDistinctInOutAdjacency) {
  EdgeList el;
  el.num_vertices = 3;
  el.add(0, 1);
  el.add(1, 2);
  const CsrGraph g = build_directed_csr(std::move(el));
  EXPECT_FALSE(g.is_symmetric());
  EXPECT_EQ(g.out_degree(0), 1);
  EXPECT_EQ(g.in_degree(0), 0);
  EXPECT_EQ(g.in_degree(1), 1);
  EXPECT_EQ(g.in_degree(2), 1);
  const auto in2 = g.in_neighbors(2);
  ASSERT_EQ(in2.size(), 1u);
  EXPECT_EQ(in2[0], 1);
}

TEST(Builder, InDegreeSumEqualsOutDegreeSumDirected) {
  EdgeList el;
  el.num_vertices = 5;
  el.add(0, 1);
  el.add(0, 2);
  el.add(3, 4);
  el.add(4, 0);
  const CsrGraph g = build_directed_csr(std::move(el));
  eid_t in_sum = 0;
  eid_t out_sum = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    in_sum += g.in_degree(v);
    out_sum += g.out_degree(v);
  }
  EXPECT_EQ(in_sum, out_sum);
  EXPECT_EQ(out_sum, 4);
}

TEST(Builder, ValidatesLargeListsPastTheParallelThreshold) {
  // One bad endpoint buried in a list big enough to take the parallel
  // validation path must still throw.
  EdgeList el;
  el.num_vertices = 64;
  for (int i = 0; i < 100000; ++i) el.add(i % 64, (i + 1) % 64);
  el.edges[73111] = {3, 64};  // out of range
  EXPECT_THROW(validate_edge_list(el), std::out_of_range);
  el.edges[73111] = {3, 63};
  EXPECT_NO_THROW(validate_edge_list(el));
}

#ifdef _OPENMP
void expect_same_csr(const CsrGraph& a, const CsrGraph& b) {
  EXPECT_EQ(a.is_symmetric(), b.is_symmetric());
  EXPECT_EQ(a.out_offsets(), b.out_offsets());
  EXPECT_EQ(a.out_targets(), b.out_targets());
  EXPECT_EQ(a.in_offsets(), b.in_offsets());
  EXPECT_EQ(a.in_targets(), b.in_targets());
}

/// Adversarial edge lists: big enough to cross the parallel threshold,
/// shaped to stress one scatter pathology each.
std::vector<EdgeList> adversarial_lists() {
  std::vector<EdgeList> lists;
  {
    // Skewed degree: one hub owns nearly every edge, so a single
    // adjacency row spans many scatter chunks.
    EdgeList el;
    el.num_vertices = 1000;
    for (int i = 0; i < 60000; ++i) el.add(0, 1 + i % 999);
    lists.push_back(std::move(el));
  }
  {
    // Self-loop heavy: half the list must vanish before packing.
    EdgeList el;
    el.num_vertices = 500;
    for (int i = 0; i < 50000; ++i) {
      el.add(i % 500, (i % 2 == 0) ? i % 500 : (i * 7 + 1) % 500);
    }
    lists.push_back(std::move(el));
  }
  {
    // Duplicate heavy: dedup compacts rows to a fraction of their
    // scattered size.
    EdgeList el;
    el.num_vertices = 64;
    for (int i = 0; i < 80000; ++i) el.add(i % 64, (i * 3) % 64);
    lists.push_back(std::move(el));
  }
  {
    // Uniform random.
    EdgeList el;
    el.num_vertices = 4096;
    Xoshiro256ss rng(99);
    for (int i = 0; i < 70000; ++i) {
      el.add(static_cast<vid_t>(rng.next_bounded(4096)),
             static_cast<vid_t>(rng.next_bounded(4096)));
    }
    lists.push_back(std::move(el));
  }
  return lists;
}

class BuilderThreads : public ::testing::TestWithParam<int> {};

TEST_P(BuilderThreads, ParallelBuildEqualsSerialBuild) {
  const int threads = GetParam();
  const int saved = omp_get_max_threads();
  BuildOptions keep_order;  // order-sensitive: no sort, no dedup
  keep_order.sort_neighbors = false;
  keep_order.deduplicate = false;
  for (const EdgeList& el : adversarial_lists()) {
    for (const BuildOptions& opts : {BuildOptions{}, keep_order}) {
      omp_set_num_threads(1);
      const CsrGraph serial_sym = build_csr(el, opts);
      const CsrGraph serial_dir = build_directed_csr(el, opts);
      omp_set_num_threads(threads);
      expect_same_csr(serial_sym, build_csr(el, opts));
      expect_same_csr(serial_dir, build_directed_csr(el, opts));
      omp_set_num_threads(saved);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, BuilderThreads,
                         ::testing::Values(2, 3, 4, 8));
#endif  // _OPENMP

TEST(Csr, MemoryFootprintIsPositiveAndScales) {
  const CsrGraph small = build_csr(triangle_plus_tail());
  EdgeList big_el;
  big_el.num_vertices = 100;
  for (vid_t v = 0; v + 1 < 100; ++v) big_el.add(v, v + 1);
  const CsrGraph big = build_csr(std::move(big_el));
  EXPECT_GT(small.memory_footprint_bytes(), 0u);
  EXPECT_GT(big.memory_footprint_bytes(), small.memory_footprint_bytes());
}

}  // namespace
}  // namespace bfsx::graph
