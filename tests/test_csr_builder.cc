// Unit tests for CSR storage and edge-list -> CSR construction.
#include "graph/builder.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "graph/csr.h"

namespace bfsx::graph {
namespace {

EdgeList triangle_plus_tail() {
  // 0-1, 1-2, 2-0, 2-3 (undirected intent)
  EdgeList el;
  el.num_vertices = 4;
  el.add(0, 1);
  el.add(1, 2);
  el.add(2, 0);
  el.add(2, 3);
  return el;
}

TEST(Builder, SymmetrizedCountsBothDirections) {
  const CsrGraph g = build_csr(triangle_plus_tail());
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 8);  // 4 undirected edges -> 8 directed
  EXPECT_TRUE(g.is_symmetric());
}

TEST(Builder, NeighborsAreSortedAndComplete) {
  const CsrGraph g = build_csr(triangle_plus_tail());
  const std::vector<vid_t> n2(g.out_neighbors(2).begin(),
                              g.out_neighbors(2).end());
  EXPECT_EQ(n2, (std::vector<vid_t>{0, 1, 3}));
  const std::vector<vid_t> n3(g.out_neighbors(3).begin(),
                              g.out_neighbors(3).end());
  EXPECT_EQ(n3, (std::vector<vid_t>{2}));
}

TEST(Builder, HasEdgeBothDirectionsAfterSymmetrize) {
  const CsrGraph g = build_csr(triangle_plus_tail());
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_TRUE(g.has_edge(3, 2));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(Builder, RemovesSelfLoops) {
  EdgeList el;
  el.num_vertices = 3;
  el.add(0, 0);
  el.add(1, 1);
  el.add(0, 1);
  const CsrGraph g = build_csr(std::move(el));
  EXPECT_EQ(g.num_edges(), 2);  // just 0<->1
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(Builder, KeepsSelfLoopsWhenAsked) {
  EdgeList el;
  el.num_vertices = 2;
  el.add(0, 0);
  el.add(0, 1);
  BuildOptions opts;
  opts.remove_self_loops = false;
  const CsrGraph g = build_csr(std::move(el), opts);
  EXPECT_TRUE(g.has_edge(0, 0));
}

TEST(Builder, DeduplicatesParallelEdges) {
  EdgeList el;
  el.num_vertices = 2;
  for (int i = 0; i < 5; ++i) el.add(0, 1);
  const CsrGraph g = build_csr(std::move(el));
  EXPECT_EQ(g.num_edges(), 2);  // one each way
  EXPECT_EQ(g.out_degree(0), 1);
}

TEST(Builder, DuplicatesSurviveWhenDedupOff) {
  EdgeList el;
  el.num_vertices = 2;
  el.add(0, 1);
  el.add(0, 1);
  BuildOptions opts;
  opts.deduplicate = false;
  const CsrGraph g = build_csr(std::move(el), opts);
  EXPECT_EQ(g.out_degree(0), 2);
}

TEST(Builder, RejectsOutOfRangeEndpoints) {
  EdgeList el;
  el.num_vertices = 2;
  el.add(0, 5);
  EXPECT_THROW(build_csr(std::move(el)), std::out_of_range);
}

TEST(Builder, EmptyGraphBuilds) {
  EdgeList el;
  el.num_vertices = 3;
  const CsrGraph g = build_csr(std::move(el));
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.out_degree(1), 0);
}

TEST(Builder, DirectedKeepsDistinctInOutAdjacency) {
  EdgeList el;
  el.num_vertices = 3;
  el.add(0, 1);
  el.add(1, 2);
  const CsrGraph g = build_directed_csr(std::move(el));
  EXPECT_FALSE(g.is_symmetric());
  EXPECT_EQ(g.out_degree(0), 1);
  EXPECT_EQ(g.in_degree(0), 0);
  EXPECT_EQ(g.in_degree(1), 1);
  EXPECT_EQ(g.in_degree(2), 1);
  const auto in2 = g.in_neighbors(2);
  ASSERT_EQ(in2.size(), 1u);
  EXPECT_EQ(in2[0], 1);
}

TEST(Builder, InDegreeSumEqualsOutDegreeSumDirected) {
  EdgeList el;
  el.num_vertices = 5;
  el.add(0, 1);
  el.add(0, 2);
  el.add(3, 4);
  el.add(4, 0);
  const CsrGraph g = build_directed_csr(std::move(el));
  eid_t in_sum = 0;
  eid_t out_sum = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    in_sum += g.in_degree(v);
    out_sum += g.out_degree(v);
  }
  EXPECT_EQ(in_sum, out_sum);
  EXPECT_EQ(out_sum, 4);
}

TEST(Csr, MemoryFootprintIsPositiveAndScales) {
  const CsrGraph small = build_csr(triangle_plus_tail());
  EdgeList big_el;
  big_el.num_vertices = 100;
  for (vid_t v = 0; v + 1 < 100; ++v) big_el.add(v, v + 1);
  const CsrGraph big = build_csr(std::move(big_el));
  EXPECT_GT(small.memory_footprint_bytes(), 0u);
  EXPECT_GT(big.memory_footprint_bytes(), small.memory_footprint_bytes());
}

}  // namespace
}  // namespace bfsx::graph
