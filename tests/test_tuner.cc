// Unit tests for candidate grids and the Random/Exhaustive tuners.
#include "core/tuner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "graph/builder.h"
#include "graph/graph_stats.h"
#include "graph/rmat.h"

namespace bfsx::core {
namespace {

LevelTrace rmat_trace() {
  graph::RmatParams p;
  p.scale = 12;
  const graph::CsrGraph g = graph::build_csr(graph::generate_rmat(p));
  return build_level_trace(g, graph::sample_roots(g, 1, 3)[0]);
}

TEST(Candidates, LogSpacedCoversRangeMonotonically) {
  const auto v = SwitchCandidates::log_spaced(1.0, 300.0, 10);
  ASSERT_EQ(v.size(), 10u);
  EXPECT_DOUBLE_EQ(v.front(), 1.0);
  EXPECT_NEAR(v.back(), 300.0, 1e-9);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(Candidates, LogSpacedRejectsBadRanges) {
  EXPECT_THROW(SwitchCandidates::log_spaced(0.0, 10.0, 5),
               std::invalid_argument);
  EXPECT_THROW(SwitchCandidates::log_spaced(10.0, 1.0, 5),
               std::invalid_argument);
  EXPECT_THROW(SwitchCandidates::log_spaced(1.0, 10.0, 0),
               std::invalid_argument);
}

TEST(Candidates, PaperGridHasAThousandCases) {
  const SwitchCandidates c = SwitchCandidates::paper_grid();
  EXPECT_EQ(c.size(), 1000u);  // the Fig. 8 setup
}

TEST(Candidates, AtEnumeratesFullCross) {
  SwitchCandidates c;
  c.m_values = {1, 2};
  c.n_values = {10, 20, 30};
  ASSERT_EQ(c.size(), 6u);
  EXPECT_EQ(c.at(0).m, 1);
  EXPECT_EQ(c.at(0).n, 10);
  EXPECT_EQ(c.at(5).m, 2);
  EXPECT_EQ(c.at(5).n, 30);
}

TEST(Sweep, PricesEveryCandidateAndFindsExtremes) {
  const LevelTrace t = rmat_trace();
  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  const SwitchCandidates c = SwitchCandidates::coarse_grid();
  const CandidateSweep sweep = sweep_single(t, cpu, c);
  ASSERT_EQ(sweep.seconds.size(), c.size());
  for (std::size_t i = 0; i < sweep.seconds.size(); ++i) {
    EXPECT_GE(sweep.seconds[i], sweep.best_seconds());
    EXPECT_LE(sweep.seconds[i], sweep.worst_seconds());
  }
  EXPECT_GE(sweep.mean_seconds, sweep.best_seconds());
  EXPECT_LE(sweep.mean_seconds, sweep.worst_seconds());
}

TEST(Sweep, BestBeatsWorstStrictlyOnRealTrace) {
  // On a scale-free graph the switching point genuinely matters. Scale
  // 13: at scale 12 the best/worst ratio sits right at the 0.5
  // threshold (0.48-0.53 across seeds), so the margin there was a
  // coin-flip on the generator's stream layout; one scale up it is a
  // robust ~0.32 for every seed tried.
  graph::RmatParams p;
  p.scale = 13;
  const graph::CsrGraph g = graph::build_csr(graph::generate_rmat(p));
  const LevelTrace t = build_level_trace(g, graph::sample_roots(g, 1, 3)[0]);
  const sim::ArchSpec gpu = sim::make_kepler_gpu();
  const CandidateSweep sweep =
      sweep_single(t, gpu, SwitchCandidates::paper_grid());
  EXPECT_LT(sweep.best_seconds(), 0.5 * sweep.worst_seconds());
}

TEST(Sweep, SweepEntriesMatchDirectReplay) {
  const LevelTrace t = rmat_trace();
  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  const SwitchCandidates c = SwitchCandidates::coarse_grid();
  const CandidateSweep sweep = sweep_single(t, cpu, c);
  for (std::size_t i = 0; i < c.size(); i += 7) {
    EXPECT_DOUBLE_EQ(sweep.seconds[i], replay_single(t, cpu, c.at(i)));
  }
}

TEST(Sweep, CrossSweepRespectsInnerPolicy) {
  const LevelTrace t = rmat_trace();
  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  const sim::ArchSpec gpu = sim::make_kepler_gpu();
  const sim::InterconnectSpec link;
  const SwitchCandidates c = SwitchCandidates::coarse_grid();
  const CandidateSweep sweep =
      sweep_cross(t, cpu, gpu, link, c, HybridPolicy{14, 24});
  for (std::size_t i = 0; i < c.size(); i += 11) {
    EXPECT_DOUBLE_EQ(sweep.seconds[i],
                     replay_cross(t, cpu, gpu, link, c.at(i), {14, 24}));
  }
}

TEST(PickBest, ReturnsTheMinimum) {
  const LevelTrace t = rmat_trace();
  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  const SwitchCandidates c = SwitchCandidates::coarse_grid();
  const CandidateSweep sweep = sweep_single(t, cpu, c);
  const TunedPolicy best = pick_best(sweep, c);
  EXPECT_DOUBLE_EQ(best.seconds, sweep.best_seconds());
  EXPECT_DOUBLE_EQ(replay_single(t, cpu, best.policy), best.seconds);
}

TEST(PickRandom, IsDeterministicAndWithinRange) {
  const LevelTrace t = rmat_trace();
  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  const SwitchCandidates c = SwitchCandidates::coarse_grid();
  const CandidateSweep sweep = sweep_single(t, cpu, c);
  const TunedPolicy a = pick_random(sweep, c, 5);
  const TunedPolicy b = pick_random(sweep, c, 5);
  EXPECT_EQ(a.policy, b.policy);
  EXPECT_GE(a.seconds, sweep.best_seconds());
  EXPECT_LE(a.seconds, sweep.worst_seconds());
}

TEST(Sweep, EmptyGridThrows) {
  const LevelTrace t = rmat_trace();
  EXPECT_THROW(sweep_single(t, sim::make_sandy_bridge_cpu(), {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace bfsx::core
