// Unit tests for the SPD solver and ridge regression.
#include "ml/linreg.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/prng.h"
#include "ml/metrics.h"

namespace bfsx::ml {
namespace {

TEST(SolveSpd, IdentitySystem) {
  const auto x = solve_spd({1, 0, 0, 1}, {3, -4}, 2);
  EXPECT_DOUBLE_EQ(x[0], 3);
  EXPECT_DOUBLE_EQ(x[1], -4);
}

TEST(SolveSpd, KnownThreeByThree) {
  // A = [[4,1,0],[1,3,1],[0,1,2]], b = A * [1,2,3]^T = [6,10,8]
  const auto x = solve_spd({4, 1, 0, 1, 3, 1, 0, 1, 2}, {6, 10, 8}, 3);
  EXPECT_NEAR(x[0], 1, 1e-12);
  EXPECT_NEAR(x[1], 2, 1e-12);
  EXPECT_NEAR(x[2], 3, 1e-12);
}

TEST(SolveSpd, RejectsIndefiniteMatrix) {
  EXPECT_THROW(solve_spd({0, 0, 0, 0}, {1, 1}, 2), std::runtime_error);
  EXPECT_THROW(solve_spd({-1, 0, 0, 1}, {1, 1}, 2), std::runtime_error);
}

TEST(SolveSpd, RejectsShapeMismatch) {
  EXPECT_THROW(solve_spd({1, 0, 0, 1}, {1}, 2), std::invalid_argument);
}

TEST(Ridge, RecoversExactLinearRelation) {
  // y = 3 x0 - 2 x1 + 7, noiseless.
  graph::Xoshiro256ss rng(4);
  Dataset d;
  for (int i = 0; i < 50; ++i) {
    const double x0 = rng.next_double() * 10;
    const double x1 = rng.next_double() * 5;
    d.add({x0, x1}, 3 * x0 - 2 * x1 + 7);
  }
  const RidgeModel m = RidgeModel::fit(d, {.lambda = 1e-8});
  EXPECT_NEAR(m.predict(std::vector<double>{2.0, 1.0}), 3 * 2 - 2 * 1 + 7, 1e-3);
  EXPECT_NEAR(m.predict(std::vector<double>{0.0, 0.0}), 7, 1e-3);
}

TEST(Ridge, HandlesCollinearFeaturesViaRegularisation) {
  // x1 = 2*x0 exactly: OLS normal equations are singular; ridge still
  // produces a sane predictor.
  graph::Xoshiro256ss rng(9);
  Dataset d;
  for (int i = 0; i < 40; ++i) {
    const double x0 = rng.next_double();
    d.add({x0, 2 * x0}, 5 * x0 + 1);
  }
  const RidgeModel m = RidgeModel::fit(d, {.lambda = 1e-3});
  EXPECT_NEAR(m.predict(std::vector<double>{0.5, 1.0}), 3.5, 0.05);
}

TEST(Ridge, PredictionsBeatMeanBaseline) {
  graph::Xoshiro256ss rng(2);
  Dataset train;
  Dataset test;
  for (int i = 0; i < 200; ++i) {
    const double x0 = rng.next_double() * 4 - 2;
    const double noise = (rng.next_double() - 0.5) * 0.2;
    (i < 150 ? train : test).add({x0}, 2 * x0 + noise);
  }
  const RidgeModel m = RidgeModel::fit(train);
  const auto pred = m.predict_all(test);
  EXPECT_GT(r_squared(test.y, pred), 0.95);
}

TEST(Ridge, RejectsEmptyAndNegativeLambda) {
  EXPECT_THROW(RidgeModel::fit(Dataset{}), std::invalid_argument);
  Dataset d;
  d.add({1.0}, 1.0);
  EXPECT_THROW(RidgeModel::fit(d, {.lambda = -1.0}), std::invalid_argument);
}

TEST(Ridge, KindString) {
  Dataset d;
  d.add({1.0}, 1.0);
  d.add({2.0}, 2.0);
  EXPECT_STREQ(RidgeModel::fit(d).kind(), "ridge");
}

}  // namespace
}  // namespace bfsx::ml
