// Unit tests for the bool-map frontier representation.
#include "bfs/boolmap.h"

#include <gtest/gtest.h>

#include "bfs/drivers.h"
#include "bfs/validate.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "graph/rmat.h"

namespace bfsx::bfs {
namespace {

using graph::build_csr;

TEST(BoolMap, BasicSetTestCount) {
  BoolMap m(100);
  EXPECT_EQ(m.size(), 100u);
  EXPECT_EQ(m.count(), 0u);
  m.set(3);
  m.set(99);
  EXPECT_TRUE(m.test(3));
  EXPECT_FALSE(m.test(4));
  EXPECT_EQ(m.count(), 2u);
  m.reset();
  EXPECT_EQ(m.count(), 0u);
}

TEST(BoolMap, SwapExchangesContents) {
  BoolMap a(4);
  BoolMap b(8);
  a.set(1);
  b.set(7);
  a.swap(b);
  EXPECT_EQ(a.size(), 8u);
  EXPECT_TRUE(a.test(7));
  EXPECT_TRUE(b.test(1));
}

TEST(BoolMapBfs, MatchesBitmapBottomUpExactly) {
  graph::RmatParams p;
  p.scale = 11;
  const CsrGraph g = build_csr(graph::generate_rmat(p));
  for (vid_t root : graph::sample_roots(g, 3, 6)) {
    TraversalLog bool_log;
    TraversalLog bit_log;
    const BfsResult a = run_bottom_up_boolmap(g, root, &bool_log);
    const BfsResult b = run_bottom_up(g, root, &bit_log);
    EXPECT_TRUE(same_levels(a, b)) << "root " << root;
    EXPECT_TRUE(validate_bfs(g, root, a).ok);
    EXPECT_EQ(a.reached, b.reached);
    EXPECT_EQ(a.edges_in_component, b.edges_in_component);
    // Work counters agree level by level: the representation changes
    // memory layout, never the algorithm.
    ASSERT_EQ(bool_log.levels.size(), bit_log.levels.size());
    for (std::size_t i = 0; i < bool_log.levels.size(); ++i) {
      EXPECT_EQ(bool_log.levels[i].frontier_vertices,
                bit_log.levels[i].frontier_vertices);
      EXPECT_EQ(bool_log.levels[i].frontier_edges,
                bit_log.levels[i].frontier_edges);
      EXPECT_EQ(bool_log.levels[i].bottom_up_scanned,
                bit_log.levels[i].bottom_up_scanned);
    }
  }
}

TEST(BoolMapBfs, HandlesDisconnectedGraphs) {
  const CsrGraph g = build_csr(graph::make_two_cliques(12));
  const BfsResult r = run_bottom_up_boolmap(g, 1);
  EXPECT_EQ(r.reached, 6);
  EXPECT_TRUE(validate_bfs(g, 1, r).ok);
}

TEST(BoolMapBfs, SingleVertex) {
  const CsrGraph g = build_csr(graph::make_path(1));
  const BfsResult r = run_bottom_up_boolmap(g, 0);
  EXPECT_EQ(r.reached, 1);
  EXPECT_EQ(r.parent[0], 0);
}

}  // namespace
}  // namespace bfsx::bfs
