// Concurrent lease/return fuzz for bfs::StatePool. The serving engine
// checks states out from std::thread workers (not just the runner's
// structured OpenMP dispatch), so the pool's mutex discipline is
// exercised here under raw threads — this test is part of the TSan CI
// selection (`state_pool` matches the job's regex).
#include "bfs/state_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "graph/builder.h"
#include "graph/graph_stats.h"
#include "graph/rmat.h"
#include "graph500/native_engine.h"
#include "graph500/reference_bfs.h"

namespace bfsx::bfs {
namespace {

graph::CsrGraph rmat(int scale) {
  graph::RmatParams p;
  p.scale = scale;
  p.edgefactor = 8;
  p.seed = 99;
  return graph::build_csr(graph::generate_rmat(p));
}

TEST(StatePoolConcurrent, LeaseReturnFuzzAcrossThreads) {
  const graph::CsrGraph g = rmat(9);
  const std::vector<graph::vid_t> roots = graph::sample_roots(g, 8, 123);
  StatePool pool;
  // The pooled path the serving engine uses: every traversal leases a
  // state, runs, and returns it on destruction.
  const graph500::BfsEngine engine =
      graph500::make_native_top_down_engine(nullptr, &pool);

  constexpr int kThreads = 4;
  constexpr int kItersPerThread = 32;
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kItersPerThread; ++i) {
        const graph::vid_t root =
            roots[static_cast<std::size_t>(t * kItersPerThread + i) %
                  roots.size()];
        // A stale reset (cross-thread recycling bug) corrupts an
        // answer here, not just a counter.
        const BfsResult got = engine(g, root).result;
        const BfsResult want = graph500::reference_bfs(g, root);
        if (got.level != want.level || got.reached != want.reached) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  // Every lease went back: the freelist holds all distinct states, and
  // no more states were built than there were concurrent holders.
  EXPECT_EQ(pool.idle(), pool.created());
  EXPECT_LE(pool.created(), static_cast<std::size_t>(kThreads));
  EXPECT_GE(pool.created(), 1u);
}

TEST(StatePoolConcurrent, MovedLeasesReturnExactlyOnce) {
  const graph::CsrGraph g = rmat(7);
  StatePool pool;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 64; ++i) {
        StatePool::Lease a = pool.acquire(g, 0);
        StatePool::Lease b = std::move(a);  // churn the move path too
        StatePool::Lease c = std::move(b);
        (void)c;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(pool.idle(), pool.created());
  EXPECT_LE(pool.created(), static_cast<std::size_t>(kThreads));
}

}  // namespace
}  // namespace bfsx::bfs
