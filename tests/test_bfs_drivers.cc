// Unit tests for the full-traversal drivers (serial, top-down,
// bottom-up) and their agreement with each other.
#include "bfs/drivers.h"

#include <gtest/gtest.h>

#include "bfs/validate.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "graph/rmat.h"

namespace bfsx::bfs {
namespace {

using graph::build_csr;

TEST(Serial, PathLevelsAreDistances) {
  const CsrGraph g = build_csr(graph::make_path(6));
  const BfsResult r = run_serial(g, 0);
  for (vid_t v = 0; v < 6; ++v) EXPECT_EQ(r.level[static_cast<std::size_t>(v)], v);
  EXPECT_EQ(r.reached, 6);
  EXPECT_EQ(r.edges_in_component, 5);
}

TEST(Serial, GridLevelsAreManhattanDistance) {
  const CsrGraph g = build_csr(graph::make_grid(4, 5));
  const BfsResult r = run_serial(g, 0);
  for (vid_t row = 0; row < 4; ++row) {
    for (vid_t col = 0; col < 5; ++col) {
      EXPECT_EQ(r.level[static_cast<std::size_t>(row * 5 + col)], row + col);
    }
  }
}

TEST(Serial, UnreachableStaysUnreached) {
  const CsrGraph g = build_csr(graph::make_two_cliques(8));
  const BfsResult r = run_serial(g, 0);
  EXPECT_EQ(r.reached, 4);
  for (vid_t v = 4; v < 8; ++v) {
    EXPECT_EQ(r.parent[static_cast<std::size_t>(v)], graph::kNoVertex);
    EXPECT_EQ(r.level[static_cast<std::size_t>(v)], -1);
  }
  EXPECT_EQ(r.edges_in_component, 6);  // one K4
}

TEST(TopDown, MatchesSerialLevelsOnRmat) {
  graph::RmatParams p;
  p.scale = 10;
  const CsrGraph g = build_csr(graph::generate_rmat(p));
  const auto roots = graph::sample_roots(g, 4, 3);
  for (vid_t root : roots) {
    const BfsResult serial = run_serial(g, root);
    const BfsResult td = run_top_down(g, root);
    EXPECT_TRUE(same_levels(serial, td)) << "root " << root;
    EXPECT_EQ(serial.reached, td.reached);
  }
}

TEST(BottomUp, MatchesSerialLevelsOnRmat) {
  graph::RmatParams p;
  p.scale = 10;
  const CsrGraph g = build_csr(graph::generate_rmat(p));
  const auto roots = graph::sample_roots(g, 4, 3);
  for (vid_t root : roots) {
    const BfsResult serial = run_serial(g, root);
    const BfsResult bu = run_bottom_up(g, root);
    EXPECT_TRUE(same_levels(serial, bu)) << "root " << root;
  }
}

TEST(Drivers, LogRecordsFrontierShape) {
  // The Fig. 1/2 property: |V|cq over levels rises then falls on a
  // small-world graph.
  graph::RmatParams p;
  p.scale = 12;
  const CsrGraph g = build_csr(graph::generate_rmat(p));
  const auto roots = graph::sample_roots(g, 1, 3);
  TraversalLog log;
  run_top_down(g, roots[0], &log);
  ASSERT_GE(log.levels.size(), 3u);
  EXPECT_EQ(log.levels.front().frontier_vertices, 1);
  vid_t peak = 0;
  std::size_t peak_at = 0;
  for (std::size_t i = 0; i < log.levels.size(); ++i) {
    if (log.levels[i].frontier_vertices > peak) {
      peak = log.levels[i].frontier_vertices;
      peak_at = i;
    }
  }
  EXPECT_GT(peak_at, 0u);                       // not at the start
  EXPECT_LT(peak_at, log.levels.size() - 1);    // not at the end
  EXPECT_GT(peak, g.num_vertices() / 10);       // a real bulge
}

TEST(Drivers, BottomUpLogHasScanCounts) {
  const CsrGraph g = build_csr(graph::make_binary_tree(255));
  TraversalLog log;
  run_bottom_up(g, 0, &log);
  ASSERT_FALSE(log.levels.empty());
  // Every level but the last scans edges; the last expansion may find
  // all vertices already visited and scan nothing.
  for (std::size_t i = 0; i + 1 < log.levels.size(); ++i) {
    EXPECT_GT(log.levels[i].bottom_up_scanned, 0) << "level " << i;
  }
}

TEST(Drivers, SingleVertexGraph) {
  const CsrGraph g = build_csr(graph::make_path(1));
  const BfsResult r = run_top_down(g, 0);
  EXPECT_EQ(r.reached, 1);
  EXPECT_EQ(r.parent[0], 0);
  EXPECT_EQ(r.edges_in_component, 0);
}

TEST(Drivers, CompleteGraphIsTwoLevels) {
  const CsrGraph g = build_csr(graph::make_complete(20));
  TraversalLog log;
  const BfsResult r = run_top_down(g, 5, &log);
  EXPECT_EQ(r.reached, 20);
  EXPECT_EQ(log.levels.size(), 2u);  // root level + the rest (+ empty check)
  EXPECT_EQ(r.edges_in_component, 190);
}

}  // namespace
}  // namespace bfsx::bfs
