// Unit tests for the M/N switching rule (paper Fig. 4).
#include "core/hybrid_policy.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace bfsx::core {
namespace {

using bfs::Direction;

constexpr graph::eid_t kE = 1'000'000;  // |E|
constexpr graph::vid_t kV = 100'000;    // |V|

TEST(HybridPolicy, SmallFrontierGoesTopDown) {
  const HybridPolicy p{10.0, 10.0};
  EXPECT_EQ(p.decide(50'000, 5'000, kE, kV), Direction::kTopDown);
}

TEST(HybridPolicy, LargeEdgeFrontierGoesBottomUp) {
  const HybridPolicy p{10.0, 10.0};
  // |E|cq = 200k >= |E|/M = 100k even though |V|cq is small.
  EXPECT_EQ(p.decide(200'000, 5'000, kE, kV), Direction::kBottomUp);
}

TEST(HybridPolicy, LargeVertexFrontierGoesBottomUp) {
  const HybridPolicy p{10.0, 10.0};
  // |V|cq = 20k >= |V|/N = 10k even though |E|cq is small.
  EXPECT_EQ(p.decide(50'000, 20'000, kE, kV), Direction::kBottomUp);
}

TEST(HybridPolicy, ThresholdsAreStrict) {
  const HybridPolicy p{10.0, 10.0};
  // Exactly |E|/M is NOT less than |E|/M -> bottom-up (Fig. 4 uses >=).
  EXPECT_EQ(p.decide(kE / 10, 1, kE, kV), Direction::kBottomUp);
  EXPECT_EQ(p.decide(kE / 10 - 1, kV / 10 - 1, kE, kV), Direction::kTopDown);
}

TEST(HybridPolicy, LargerMSwitchesEarlier) {
  // The same frontier flips to bottom-up as M grows.
  const graph::eid_t e_cq = 50'000;
  EXPECT_EQ((HybridPolicy{10, 1}).decide(e_cq, 1, kE, kV),
            Direction::kTopDown);
  EXPECT_EQ((HybridPolicy{30, 1}).decide(e_cq, 1, kE, kV),
            Direction::kBottomUp);
}

TEST(HybridPolicy, AlwaysHelpersBehave) {
  // Mid-traversal frontiers are always strictly smaller than the graph.
  EXPECT_EQ(always_top_down().decide(kE / 2, kV / 2, kE, kV),
            Direction::kTopDown);
  EXPECT_EQ(always_bottom_up().decide(1, 1, kE, kV), Direction::kBottomUp);
}

TEST(HybridPolicy, ValidateRejectsKnobsBelowOne) {
  EXPECT_THROW((HybridPolicy{0.5, 10.0}.validate()), std::invalid_argument);
  EXPECT_THROW((HybridPolicy{10.0, 0.0}.validate()), std::invalid_argument);
  EXPECT_NO_THROW((HybridPolicy{1.0, 1.0}.validate()));
}

TEST(HybridPolicy, EmptyFrontierIsTopDown) {
  const HybridPolicy p{10.0, 10.0};
  EXPECT_EQ(p.decide(0, 0, kE, kV), Direction::kTopDown);
}

}  // namespace
}  // namespace bfsx::core
