// Corruption tests for the paranoid structural validators: every
// fixture here is a deliberately broken CSR or BFS state, and each one
// must be caught with a failure message naming the corrupted element.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "bfs/bottomup.h"
#include "bfs/state.h"
#include "bfs/topdown.h"
#include "check/contract.h"
#include "check/report.h"
#include "graph/builder.h"
#include "graph/csr.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "graph/rmat.h"

namespace bfsx {
namespace {

using bfs::BfsState;
using check::CheckReport;
using check::ContractViolation;
using graph::CsrGraph;
using graph::eid_t;
using graph::vid_t;

/// Triangle 0-1-2, symmetric, rows sorted: the smallest graph where
/// every invariant is non-trivial.
CsrGraph triangle() {
  return CsrGraph({0, 2, 4, 6}, {1, 2, 0, 2, 0, 1});
}

std::string flat(const CheckReport& report) { return report.to_string(); }

// ---- CSR constructor contracts (promoted from assert) -------------------

TEST(CsrContracts, EmptyOffsetsRejectedInAllBuildTypes) {
  EXPECT_THROW(CsrGraph({}, {}), ContractViolation);
}

TEST(CsrContracts, NonZeroFirstOffsetRejected) {
  EXPECT_THROW(CsrGraph({1, 2}, {0, 0}), ContractViolation);
}

TEST(CsrContracts, DanglingBackOffsetRejected) {
  // Claims 4 targets, provides 2.
  EXPECT_THROW(CsrGraph({0, 4}, {0, 0}), ContractViolation);
}

TEST(CsrContracts, DirectedSizeMismatchRejected) {
  EXPECT_THROW(CsrGraph({0, 1, 1}, {1}, {0, 1}, {0}), ContractViolation);
}

// ---- CSR structural validator -------------------------------------------

TEST(CsrInvariants, CleanGraphPasses) {
  CheckReport report;
  triangle().check_invariants(report);
  EXPECT_TRUE(report.ok()) << flat(report);
  EXPECT_NO_THROW(triangle().assert_invariants());
}

TEST(CsrInvariants, BuiltGraphsPass) {
  graph::RmatParams p;
  p.scale = 8;
  const CsrGraph g = graph::build_csr(graph::generate_rmat(p));
  CheckReport report;
  g.check_invariants(report);
  EXPECT_TRUE(report.ok()) << flat(report);
}

TEST(CsrInvariants, UnsortedRowCaught) {
  // Row 0 holds {2, 1} instead of {1, 2}.
  const CsrGraph g({0, 2, 4, 6}, {2, 1, 0, 2, 0, 1});
  CheckReport report;
  g.check_invariants(report);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(flat(report).find("not sorted"), std::string::npos) << flat(report);
  EXPECT_NE(flat(report).find("vertex 0"), std::string::npos) << flat(report);
}

TEST(CsrInvariants, NonMonotoneOffsetCaught) {
  // offsets[2] < offsets[1]: vertex 1's row has negative length.
  const CsrGraph g({0, 4, 2, 6}, {1, 2, 0, 2, 0, 1});
  CheckReport report;
  g.check_invariants(report);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(flat(report).find("not monotone"), std::string::npos)
      << flat(report);
}

TEST(CsrInvariants, DanglingTargetCaught) {
  // Target 5 with only 3 vertices.
  const CsrGraph g({0, 2, 4, 6}, {1, 5, 0, 2, 0, 1});
  CheckReport report;
  g.check_invariants(report);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(flat(report).find("out of range"), std::string::npos)
      << flat(report);
}

TEST(CsrInvariants, AsymmetricUndirectedEdgeCaught) {
  // (0,1) present, mirror (1,0) missing: vertex 1's row is only {2}.
  const CsrGraph g({0, 2, 3, 5}, {1, 2, 2, 0, 1});
  CheckReport report;
  g.check_invariants(report);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(flat(report).find("no mirror"), std::string::npos) << flat(report);
  EXPECT_NE(flat(report).find("(0,1)"), std::string::npos) << flat(report);
  EXPECT_THROW(g.assert_invariants(), ContractViolation);
}

TEST(CsrInvariants, DirectedTransposeMismatchCaught) {
  // Out says 0->1; the in-adjacency instead records an in-edge 0<-1.
  const CsrGraph g({0, 1, 1}, {1}, {0, 1, 1}, {1});
  CheckReport report;
  g.check_invariants(report);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(flat(report).find("in-adjacency"), std::string::npos)
      << flat(report);
}

TEST(CsrInvariants, MultipleFailuresNumbered) {
  // Two independent corruptions: an unsorted row and a missing mirror.
  const CsrGraph g({0, 2, 4, 6}, {2, 1, 0, 2, 2, 1});
  CheckReport report;
  g.check_invariants(report);
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.total_failures(), 2u) << flat(report);
}

// ---- BFS state validator ------------------------------------------------

TEST(BfsStateInvariants, FreshStatePasses) {
  const CsrGraph g = triangle();
  const BfsState state(g, 0);
  CheckReport report;
  state.check_invariants(g, report);
  EXPECT_TRUE(report.ok()) << flat(report);
}

TEST(BfsStateInvariants, RootRangeCheckedAtConstruction) {
  const CsrGraph g = triangle();
  EXPECT_THROW(BfsState(g, -1), ContractViolation);
  EXPECT_THROW(BfsState(g, 3), ContractViolation);
}

TEST(BfsStateInvariants, StateValidBetweenKernelSteps) {
  graph::RmatParams p;
  p.scale = 8;
  const CsrGraph g = graph::build_csr(graph::generate_rmat(p));
  const vid_t root = graph::sample_roots(g, 1, 3)[0];
  BfsState state(g, root);
  int guard = 0;
  while (!state.frontier_empty()) {
    // Alternate directions so the unvisited-superset straggler case
    // (top-down visiting vertices the bottom-up candidate list still
    // holds) is exercised, not just the pure-direction paths.
    if (state.current_level % 2 == 0) {
      (void)bfs::top_down_step(g, state);
    } else {
      (void)bfs::bottom_up_step(g, state);
    }
    CheckReport report;
    state.check_invariants(g, report);
    ASSERT_TRUE(report.ok()) << "after level " << state.current_level << ": "
                             << flat(report);
    ASSERT_LT(++guard, 64) << "traversal did not terminate";
  }
}

TEST(BfsStateInvariants, BrokenParentCaught) {
  const CsrGraph g = triangle();
  BfsState state(g, 0);
  // Claims vertex 1 has a parent while level/visited say unreached.
  state.parent[1] = 0;
  CheckReport report;
  state.check_invariants(g, report);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(flat(report).find("vertex 1"), std::string::npos) << flat(report);
  EXPECT_THROW(state.assert_invariants(g), ContractViolation);
}

TEST(BfsStateInvariants, ParentOutOfRangeCaught) {
  const CsrGraph g = triangle();
  BfsState state(g, 0);
  state.parent[1] = 17;
  state.level[1] = 1;
  state.visited.set(1);
  state.reached = 2;
  // 1 must also be in the frontier story? No: level 1 > current_level 0
  // is the first thing the validator should see.
  CheckReport report;
  state.check_invariants(g, report);
  EXPECT_FALSE(report.ok()) << flat(report);
}

TEST(BfsStateInvariants, ReachedCountMismatchCaught) {
  const CsrGraph g = triangle();
  BfsState state(g, 0);
  state.reached = 2;  // visited bitmap still holds only the root
  CheckReport report;
  state.check_invariants(g, report);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(flat(report).find("reached"), std::string::npos) << flat(report);
}

TEST(BfsStateInvariants, FrontierQueueBitmapDivergenceCaught) {
  const CsrGraph g = triangle();
  BfsState state(g, 0);
  state.frontier_bitmap.set(2);  // bitmap claims 2 is frontier, queue not
  CheckReport report;
  state.check_invariants(g, report);
  EXPECT_FALSE(report.ok()) << flat(report);
}

TEST(BfsStateInvariants, DirtyScratchBitmapCaught) {
  const CsrGraph g = triangle();
  BfsState state(g, 0);
  state.bu_scratch.set(1);  // violates the zero-rescan wipe invariant
  CheckReport report;
  state.check_invariants(g, report);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(flat(report).find("bu_scratch"), std::string::npos)
      << flat(report);
}

TEST(BfsStateInvariants, DirtyScratchAbortsBottomUpStep) {
  // The kernel's always-paranoid entry check: a dirty scratch bitmap
  // would silently corrupt the next frontier, so the step must refuse.
  graph::RmatParams p;
  p.scale = 6;
  const CsrGraph g = graph::build_csr(graph::generate_rmat(p));
  const vid_t root = graph::sample_roots(g, 1, 3)[0];
  BfsState state(g, root);
#if BFSX_PARANOID_ACTIVE
  state.bu_scratch.set(static_cast<std::size_t>(root));
  EXPECT_THROW((void)bfs::bottom_up_step(g, state), ContractViolation);
#else
  GTEST_SKIP() << "entry check compiled out without -DBFSX_PARANOID=ON";
#endif
}

TEST(BfsStateInvariants, UnvisitedListCorruptionCaught) {
  const CsrGraph g = triangle();
  BfsState state(g, 0);
  state.unvisited_primed = true;
  state.unvisited = {2, 1};  // not ascending
  CheckReport report;
  state.check_invariants(g, report);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(flat(report).find("unvisited"), std::string::npos) << flat(report);
}

TEST(BfsStateInvariants, UnvisitedMissingVertexCaught) {
  const CsrGraph g = triangle();
  BfsState state(g, 0);
  state.unvisited_primed = true;
  state.unvisited = {1};  // vertex 2 is unvisited but missing from the list
  CheckReport report;
  state.check_invariants(g, report);
  EXPECT_FALSE(report.ok()) << flat(report);
}

TEST(BfsStateInvariants, StragglersAreLegal) {
  const CsrGraph g = triangle();
  BfsState state(g, 0);
  state.unvisited_primed = true;
  // 0 is visited but still listed: a legal straggler (superset allowed).
  state.unvisited = {0, 1, 2};
  CheckReport report;
  state.check_invariants(g, report);
  EXPECT_TRUE(report.ok()) << flat(report);
}

// ---- multi-failure edge-list validation (satellite) ---------------------

TEST(EdgeListValidation, CollectsNumberedFailuresWithContext) {
  graph::EdgeList el;
  el.num_vertices = 4;
  el.edges = {{0, 1}, {0, 9}, {-3, 2}, {5, 5}};
  try {
    graph::validate_edge_list(el);
    FAIL() << "validate_edge_list did not throw";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("edge[1]"), std::string::npos) << what;
    EXPECT_NE(what.find("edge[2]"), std::string::npos) << what;
    EXPECT_NE(what.find("edge[3]"), std::string::npos) << what;
    EXPECT_NE(what.find("(0, 9)"), std::string::npos) << what;
    EXPECT_NE(what.find("3 failure(s)"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace bfsx
