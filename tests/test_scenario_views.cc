// Unit tests for the implicit graph views (grid world, n-puzzle) and
// the --scenario spec parser: degrees and edge counts, deterministic
// enumeration order, wall handling, id mappings, spec validation, and
// the did-you-mean diagnostics.
#include "graph/scenario.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "graph/grid_view.h"
#include "graph/npuzzle_view.h"

namespace bfsx::graph {
namespace {

GridWorld open_grid(vid_t w, vid_t h, int conn = 4) {
  GridSpec spec;
  spec.width = w;
  spec.height = h;
  spec.connectivity = conn;
  return GridWorld(spec);
}

TEST(GridWorld, FourConnectedDegreesAndEdgeCount) {
  const GridWorld g = open_grid(3, 3);
  EXPECT_EQ(g.num_vertices(), 9);
  EXPECT_EQ(g.out_degree(g.id_of(0, 0)), 2);  // corner
  EXPECT_EQ(g.out_degree(g.id_of(1, 0)), 3);  // edge
  EXPECT_EQ(g.out_degree(g.id_of(1, 1)), 4);  // centre
  EXPECT_EQ(g.num_edges(), 24);               // 4*2 + 4*3 + 1*4
  EXPECT_TRUE(g.is_symmetric());
}

TEST(GridWorld, EightConnectedDegreesAndEdgeCount) {
  const GridWorld g = open_grid(3, 3, 8);
  EXPECT_EQ(g.out_degree(g.id_of(0, 0)), 3);
  EXPECT_EQ(g.out_degree(g.id_of(1, 0)), 5);
  EXPECT_EQ(g.out_degree(g.id_of(1, 1)), 8);
  EXPECT_EQ(g.num_edges(), 40);  // 4*3 + 4*5 + 8
}

TEST(GridWorld, NeighboursComeInAscendingIdOrder) {
  for (const int conn : {4, 8}) {
    const GridWorld g = open_grid(5, 4, conn);
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      std::vector<vid_t> ns;
      g.for_each_out_neighbor(v, [&ns](vid_t w) { ns.push_back(w); });
      for (std::size_t i = 1; i < ns.size(); ++i) {
        EXPECT_LT(ns[i - 1], ns[i]) << "conn=" << conn << " v=" << v;
      }
    }
  }
}

TEST(GridWorld, WallsAreIsolatedButKeepTheirIds) {
  GridSpec spec;
  spec.width = 16;
  spec.height = 16;
  spec.wall_density = 0.4;
  spec.wall_seed = 11;
  const GridWorld g(spec);
  EXPECT_EQ(g.num_vertices(), 256);  // walls stay in the id space

  int walls = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (!g.is_wall(v)) continue;
    ++walls;
    EXPECT_EQ(g.out_degree(v), 0) << v;
  }
  EXPECT_GT(walls, 0);
  EXPECT_LT(walls, 256);

  // No live cell ever enumerates a wall as a neighbour.
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    g.for_each_out_neighbor(v, [&g](vid_t w) {
      EXPECT_FALSE(g.is_wall(w)) << w;
    });
  }

  // Identical spec => identical walls (deterministic PRNG stream).
  const GridWorld same(spec);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.is_wall(v), same.is_wall(v)) << v;
  }
}

TEST(GridWorld, IdMappingRoundTrips) {
  const GridWorld g = open_grid(7, 5);
  for (vid_t y = 0; y < 5; ++y) {
    for (vid_t x = 0; x < 7; ++x) {
      const vid_t v = g.id_of(x, y);
      const auto [rx, ry] = g.coords_of(v);
      EXPECT_EQ(rx, x);
      EXPECT_EQ(ry, y);
    }
  }
  EXPECT_TRUE(g.in_bounds(6, 4));
  EXPECT_FALSE(g.in_bounds(7, 4));
  EXPECT_FALSE(g.in_bounds(-1, 0));
}

TEST(GridWorld, RejectsMalformedSpecs) {
  GridSpec spec;
  spec.width = 0;
  spec.height = 4;
  EXPECT_THROW(GridWorld{spec}, std::invalid_argument);
  spec.width = 4;
  spec.connectivity = 6;
  EXPECT_THROW(GridWorld{spec}, std::invalid_argument);
  spec.connectivity = 4;
  spec.wall_density = 1.0;  // would isolate everything almost surely
  EXPECT_THROW(GridWorld{spec}, std::invalid_argument);
}

TEST(NPuzzle, TwoByTwoEnumeratesHalfThePermutations) {
  const NPuzzleSpace p(NPuzzleSpec{2, 2});
  EXPECT_EQ(p.num_vertices(), 12);  // 4!/2
  EXPECT_EQ(p.num_edges(), 24);     // every state has exactly 2 moves
  EXPECT_TRUE(p.is_symmetric());
  for (vid_t v = 0; v < p.num_vertices(); ++v) {
    EXPECT_EQ(p.out_degree(v), 2) << v;
  }
}

TEST(NPuzzle, SolvedStateIsVertexZero) {
  const NPuzzleSpace p(NPuzzleSpec{3, 3});
  EXPECT_EQ(p.num_vertices(), 181440);  // 9!/2
  EXPECT_EQ(p.id_of(p.solved_state()), 0);
  EXPECT_EQ(p.state_of(0), p.solved_state());
  for (int c = 0; c < 8; ++c) {
    EXPECT_EQ(p.tile_at(p.solved_state(), c), c + 1);
  }
  EXPECT_EQ(p.blank_position(p.solved_state()), 8);
}

TEST(NPuzzle, OddPermutationsGetNoId) {
  const NPuzzleSpace p(NPuzzleSpec{3, 3});
  // Swapping two tiles flips parity: 2,1,3,...,8,blank is unreachable.
  std::uint64_t swapped = p.solved_state();
  swapped &= ~std::uint64_t{0xFF};  // clear cells 0 and 1
  swapped |= 0x2u | (0x1u << 4);    // tile 2 at cell 0, tile 1 at cell 1
  EXPECT_EQ(p.id_of(swapped), kNoVertex);
}

TEST(NPuzzle, MovesAreMutual) {
  const NPuzzleSpace p(NPuzzleSpec{3, 2});
  EXPECT_EQ(p.num_vertices(), 360);  // 6!/2
  for (vid_t v = 0; v < p.num_vertices(); ++v) {
    p.for_each_out_neighbor(v, [&p, v](vid_t w) {
      bool back = false;
      p.for_each_out_neighbor(w, [&back, v](vid_t u) {
        if (u == v) back = true;
      });
      EXPECT_TRUE(back) << v << " -> " << w;
    });
  }
}

TEST(NPuzzle, RejectsOversizedBoards) {
  EXPECT_THROW(NPuzzleSpace(NPuzzleSpec{4, 3}), std::invalid_argument);
  EXPECT_THROW(NPuzzleSpace(NPuzzleSpec{1, 1}), std::invalid_argument);
}

TEST(ParseScenario, GridDefaultsAndOptionsCanonicalize) {
  const Scenario s = parse_scenario("grid:8x8");
  EXPECT_EQ(s.name, "grid:8x8:conn=4:wall-density=0:wall-seed=1");
  ASSERT_TRUE(std::holds_alternative<GridWorld>(s.graph));
  EXPECT_EQ(std::get<GridWorld>(s.graph).num_vertices(), 64);

  const Scenario t =
      parse_scenario("grid:4x6:conn=8:wall-density=0.25:wall-seed=9");
  EXPECT_EQ(t.name, "grid:4x6:conn=8:wall-density=0.25:wall-seed=9");
}

TEST(ParseScenario, NPuzzleSpecParses) {
  const Scenario s = parse_scenario("npuzzle:2x2");
  EXPECT_EQ(s.name, "npuzzle:2x2");
  ASSERT_TRUE(std::holds_alternative<NPuzzleSpace>(s.graph));
  EXPECT_EQ(std::get<NPuzzleSpace>(s.graph).num_vertices(), 12);
}

TEST(ParseScenario, UnknownKindSuggestsClosest) {
  try {
    (void)parse_scenario("gird:8x8");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("did you mean 'grid'?"), std::string::npos) << what;
    EXPECT_NE(what.find("valid scenarios:"), std::string::npos) << what;
  }
}

TEST(ParseScenario, UnknownOptionSuggestsClosest) {
  try {
    (void)parse_scenario("grid:8x8:wall-densty=0.1");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'wall-density'?"),
              std::string::npos)
        << e.what();
  }
}

TEST(ParseScenario, MalformedSpecsThrow) {
  EXPECT_THROW((void)parse_scenario("grid"), std::invalid_argument);
  EXPECT_THROW((void)parse_scenario("grid:8"), std::invalid_argument);
  EXPECT_THROW((void)parse_scenario("grid:8xq"), std::invalid_argument);
  EXPECT_THROW((void)parse_scenario("grid:8x8:conn=five"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_scenario("npuzzle:3x3:conn=4"),
               std::invalid_argument);
}

TEST(RootState, GridCoordinatesRoundTrip) {
  const Scenario s = parse_scenario("grid:8x8");
  const vid_t v = resolve_root_state(s.graph, "5,2");
  EXPECT_EQ(v, 2 * 8 + 5);
  EXPECT_EQ(format_state(s.graph, v), "5,2");
  EXPECT_THROW((void)resolve_root_state(s.graph, "8,0"),
               std::invalid_argument);
  EXPECT_THROW((void)resolve_root_state(s.graph, "1"), std::invalid_argument);
}

TEST(RootState, GridWallsAreRejected) {
  const Scenario s = parse_scenario("grid:16x16:wall-density=0.4:wall-seed=11");
  const auto& g = std::get<GridWorld>(s.graph);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (!g.is_wall(v)) continue;
    EXPECT_THROW((void)resolve_root_state(s.graph, format_state(s.graph, v)),
                 std::invalid_argument);
    return;
  }
  FAIL() << "no wall sampled at density 0.4";
}

TEST(RootState, NPuzzleTileListsRoundTrip) {
  const Scenario s = parse_scenario("npuzzle:3x3");
  const vid_t solved = resolve_root_state(s.graph, "1,2,3,4,5,6,7,8,0");
  EXPECT_EQ(solved, 0);
  EXPECT_EQ(format_state(s.graph, solved), "1,2,3,4,5,6,7,8,0");
  // Odd parity, wrong length, and non-permutations are all rejected.
  EXPECT_THROW((void)resolve_root_state(s.graph, "2,1,3,4,5,6,7,8,0"),
               std::invalid_argument);
  EXPECT_THROW((void)resolve_root_state(s.graph, "1,2,3"),
               std::invalid_argument);
  EXPECT_THROW((void)resolve_root_state(s.graph, "1,1,3,4,5,6,7,8,0"),
               std::invalid_argument);
}

}  // namespace
}  // namespace bfsx::graph
