// Tests for the delta/varint-compressed CSR view (graph/compressed_csr.h):
// varint round-trip over adversarial degree distributions, decode-order
// fidelity, the unsorted-row rejection contract, and — the tier's core
// promise — bit-equality of traversals through CompressedCsrView with
// the same kernels on CsrGraphView: distances, parents, and per-level
// |V|cq / |E|cq counters, at 1 and 4 OpenMP threads.
#include "graph/compressed_csr.h"

#include <gtest/gtest.h>

#include <omp.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "bfs/bottomup.h"
#include "bfs/drivers.h"
#include "bfs/frontier.h"
#include "bfs/state.h"
#include "bfs/topdown.h"
#include "core/hybrid_policy.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "graph/rmat.h"
#include "graph/view.h"

namespace bfsx::graph {
namespace {

CsrGraph rmat(int scale, std::uint64_t seed = 2014) {
  RmatParams p;
  p.scale = scale;
  p.edgefactor = 16;
  p.seed = seed;
  return build_csr(generate_rmat(p));
}

std::vector<vid_t> row_of(const CompressedCsrView& v, vid_t u) {
  std::vector<vid_t> out;
  v.for_each_out_neighbor(u, [&out](vid_t w) { out.push_back(w); });
  return out;
}

// --- varint / encoding fidelity -------------------------------------

TEST(VarintCodec, RoundTripsBoundaryValues) {
  std::uint8_t buf[8];
  for (const std::uint32_t value :
       {0u, 1u, 127u, 128u, 16383u, 16384u, 2097151u, 2097152u,
        268435455u, 268435456u, 4294967295u}) {
    const std::size_t size = detail::varint_size(value);
    ASSERT_LE(size, 5u) << value;
    ASSERT_EQ(detail::varint_encode(buf, value), buf + size) << value;
    std::uint32_t decoded = 0;
    EXPECT_EQ(detail::varint_decode(buf, &decoded), buf + size) << value;
    EXPECT_EQ(decoded, value);
  }
}

TEST(CompressedCsrView, EveryRowDecodesVerbatim) {
  const CsrGraph g = rmat(12);
  const CompressedCsrView view(g);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const auto expect = g.out_neighbors(v);
    const std::vector<vid_t> got = row_of(view, v);
    ASSERT_EQ(got.size(), expect.size()) << v;
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], expect[i]) << v << ":" << i;
    }
  }
}

/// Adversarial degree distributions: rows the delta coder must not
/// mishandle — empty rows everywhere, one mega-hub owning almost every
/// edge, and maximal first-deltas (an isolated edge to the top vertex
/// id, where the first delta is the full vid).
TEST(CompressedCsrView, AdversarialDegreeDistributionsRoundTrip) {
  const vid_t n = 1024;
  EdgeList el;
  el.num_vertices = n;
  // One mega-hub (vertex 3) adjacent to everything; all other rows are
  // empty except a single max-delta edge n-1 -> 0 (stored symmetric).
  for (vid_t v = 0; v < n; ++v) {
    if (v != 3) el.edges.push_back({3, v});
  }
  el.edges.push_back({n - 1, 0});
  const CsrGraph g = build_csr(std::move(el));
  const CompressedCsrView view(g);
  EXPECT_EQ(view.num_vertices(), g.num_vertices());
  EXPECT_EQ(view.num_edges(), g.num_edges());
  for (vid_t v = 0; v < n; ++v) {
    const auto expect = g.out_neighbors(v);
    const std::vector<vid_t> got = row_of(view, v);
    ASSERT_EQ(got.size(), expect.size()) << v;
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], expect[i]) << v << ":" << i;
    }
  }
}

TEST(CompressedCsrView, AllZeroRowsGraph) {
  // No edges at all: every row empty, bytes() == 0, ratio finite.
  EdgeList el;
  el.num_vertices = 64;
  const CsrGraph g = build_csr(std::move(el));
  const CompressedCsrView view(g);
  EXPECT_EQ(view.num_edges(), 0);
  for (vid_t v = 0; v < 64; ++v) {
    EXPECT_EQ(view.out_degree(v), eid_t{0}) << v;
    EXPECT_TRUE(row_of(view, v).empty()) << v;
  }
}

TEST(CompressedCsrView, EarlyExitStopsMidRow) {
  const CsrGraph g = rmat(10);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (g.out_degree(v) < 3) continue;
    const CompressedCsrView view(g);
    int calls = 0;
    view.for_each_in_neighbor(v, [&calls](vid_t) {
      ++calls;
      return false;  // stop immediately
    });
    EXPECT_EQ(calls, 1);
    return;
  }
  FAIL() << "graph has no vertex with degree >= 3";
}

TEST(CompressedCsrView, RejectsUnsortedRows) {
  // Hand-build a CSR whose row {2, 1} is out of order: the delta coder
  // cannot represent a negative gap, so construction must throw.
  const CsrGraph g(EidArray{0, 2, 2, 2}, VidArray{2, 1});
  EXPECT_THROW(CompressedCsrView{g}, std::invalid_argument);
}

TEST(CompressedCsrView, CompressionRatioAboveOneOnRmat) {
  const CsrGraph g = rmat(12);
  const CompressedCsrView view(g);
  // Sorted R-MAT rows delta-code well below 4 bytes/edge.
  EXPECT_GT(view.compression_ratio(), 1.0);
}

// --- traversal bit-equality -----------------------------------------

struct LevelCounters {
  std::int32_t level;
  vid_t frontier_vertices;  // |V|cq
  eid_t frontier_edges;     // |E|cq
};

/// Hybrid traversal over any view, recording the paper's per-level
/// counters before each step.
template <typename V>
bfs::BfsResult run_hybrid_logged(const V& g, vid_t root,
                                 std::vector<LevelCounters>& log) {
  const core::HybridPolicy policy{};
  bfs::BfsState state(g.num_vertices(), root);
  while (!state.frontier_empty()) {
    const eid_t e_cq = bfs::frontier_out_edges(g, state.frontier_queue);
    const auto v_cq = static_cast<vid_t>(state.frontier_queue.size());
    log.push_back({state.current_level, v_cq, e_cq});
    if (policy.decide(e_cq, v_cq, g.num_edges(), g.num_vertices()) ==
        bfs::Direction::kTopDown) {
      bfs::top_down_step(g, state);
    } else {
      bfs::bottom_up_step(g, state);
    }
  }
  return std::move(state).take_result(g);
}

void expect_bit_equal(const CsrGraph& g, vid_t root) {
  const CsrGraphView raw(g);
  const CompressedCsrView compressed(g);
  std::vector<LevelCounters> raw_log, comp_log;
  const bfs::BfsResult a = run_hybrid_logged(raw, root, raw_log);
  const bfs::BfsResult b = run_hybrid_logged(compressed, root, comp_log);
  ASSERT_EQ(a.reached, b.reached);
  ASSERT_EQ(a.edges_in_component, b.edges_in_component);
  // Compressed rows decode in CSR order, so not just distances but the
  // exact parent choices must match.
  ASSERT_EQ(a.parent.size(), b.parent.size());
  for (std::size_t v = 0; v < a.parent.size(); ++v) {
    ASSERT_EQ(a.level[v], b.level[v]) << "distance diverged at " << v;
    ASSERT_EQ(a.parent[v], b.parent[v]) << "parent diverged at " << v;
  }
  ASSERT_EQ(raw_log.size(), comp_log.size());
  for (std::size_t i = 0; i < raw_log.size(); ++i) {
    EXPECT_EQ(raw_log[i].level, comp_log[i].level) << i;
    EXPECT_EQ(raw_log[i].frontier_vertices, comp_log[i].frontier_vertices)
        << "|V|cq diverged at level " << i;
    EXPECT_EQ(raw_log[i].frontier_edges, comp_log[i].frontier_edges)
        << "|E|cq diverged at level " << i;
  }
}

class CompressedTraversal : public ::testing::TestWithParam<int> {};

TEST_P(CompressedTraversal, BitEqualOnRmatScale16) {
  omp_set_num_threads(GetParam());
  const CsrGraph g = rmat(16);
  const std::vector<vid_t> roots = sample_roots(g, 3, 500);
  for (const vid_t root : roots) expect_bit_equal(g, root);
}

TEST_P(CompressedTraversal, BitEqualOnGridScenarioGraph) {
  omp_set_num_threads(GetParam());
  const CsrGraph g = build_csr(make_grid(64, 48));
  expect_bit_equal(g, /*root=*/0);
  expect_bit_equal(g, /*root=*/64 * 48 - 1);
}

TEST_P(CompressedTraversal, PureDirectionsMatchSerialOracle) {
  omp_set_num_threads(GetParam());
  const CsrGraph g = rmat(12);
  const CompressedCsrView view(g);
  const vid_t root = sample_roots(g, 1, 11)[0];
  const bfs::BfsResult oracle = bfs::run_serial(g, root);
  const bfs::BfsResult td = bfs::run_top_down(view, root);
  const bfs::BfsResult bu = bfs::run_bottom_up(view, root);
  ASSERT_EQ(td.reached, oracle.reached);
  ASSERT_EQ(bu.reached, oracle.reached);
  for (std::size_t v = 0; v < oracle.level.size(); ++v) {
    ASSERT_EQ(td.level[v], oracle.level[v]) << v;
    ASSERT_EQ(bu.level[v], oracle.level[v]) << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, CompressedTraversal,
                         ::testing::Values(1, 4));

}  // namespace
}  // namespace bfsx::graph
