// Unit tests for the CART regression tree, plus the model bake-off on
// the library's real switching-point dataset (the paper's Section II-C
// "why SVM" argument, measured).
#include "ml/decision_tree.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/trainer.h"
#include "graph/prng.h"
#include "ml/knn.h"
#include "ml/linreg.h"
#include "ml/metrics.h"
#include "ml/svr.h"

namespace bfsx::ml {
namespace {

TEST(Tree, SingleLeafPredictsMean) {
  Dataset d;
  d.add({0.0}, 2.0);
  d.add({1.0}, 4.0);
  TreeParams p;
  p.max_depth = 1;
  p.min_samples_split = 10;  // force a leaf
  const TreeModel m = TreeModel::fit(d, p);
  EXPECT_EQ(m.num_nodes(), 1);
  EXPECT_DOUBLE_EQ(m.predict(std::vector<double>{0.5}), 3.0);
}

TEST(Tree, LearnsAStepFunctionExactly) {
  Dataset d;
  for (int i = 0; i < 40; ++i) {
    const double x = i / 40.0;
    d.add({x}, x < 0.5 ? 1.0 : 9.0);
  }
  const TreeModel m = TreeModel::fit(d);
  EXPECT_DOUBLE_EQ(m.predict(std::vector<double>{0.2}), 1.0);
  EXPECT_DOUBLE_EQ(m.predict(std::vector<double>{0.8}), 9.0);
  EXPECT_LE(m.depth(), 3);
}

TEST(Tree, SplitsOnTheInformativeFeature) {
  // Feature 0 is noise; feature 1 carries the signal.
  graph::Xoshiro256ss rng(3);
  Dataset d;
  for (int i = 0; i < 100; ++i) {
    const double noise = rng.next_double();
    const double signal = rng.next_double();
    d.add({noise, signal}, signal > 0.5 ? 10.0 : -10.0);
  }
  const TreeModel m = TreeModel::fit(d);
  EXPECT_NEAR(m.predict(std::vector<double>{0.1, 0.9}), 10.0, 1.0);
  EXPECT_NEAR(m.predict(std::vector<double>{0.9, 0.1}), -10.0, 1.0);
}

TEST(Tree, FitsSmoothFunctionApproximately) {
  graph::Xoshiro256ss rng(5);
  Dataset train;
  Dataset test;
  for (int i = 0; i < 600; ++i) {
    const double x = rng.next_double() * 6;
    (i < 450 ? train : test).add({x}, std::sin(x));
  }
  const TreeModel m = TreeModel::fit(train, {.max_depth = 10});
  EXPECT_GT(r_squared(test.y, m.predict_all(test)), 0.95);
}

TEST(Tree, DepthLimitBindsTreeSize) {
  graph::Xoshiro256ss rng(9);
  Dataset d;
  for (int i = 0; i < 300; ++i) {
    const double x = rng.next_double();
    d.add({x}, rng.next_double());  // pure noise: splits galore
  }
  TreeParams p;
  p.max_depth = 3;
  p.min_gain_fraction = 0.0;
  const TreeModel m = TreeModel::fit(d, p);
  EXPECT_LE(m.depth(), 4);       // root at depth 1
  EXPECT_LE(m.num_nodes(), 15);  // complete depth-3 binary tree
}

TEST(Tree, RejectsBadInputs) {
  EXPECT_THROW(TreeModel::fit(Dataset{}), std::invalid_argument);
  Dataset d;
  d.add({1.0}, 1.0);
  EXPECT_THROW(TreeModel::fit(d, {.max_depth = 0}), std::invalid_argument);
  const TreeModel m = TreeModel::fit(d);
  EXPECT_DOUBLE_EQ(m.predict(std::vector<double>{0.0}), 1.0);
}

// ---- the Section II-C bake-off on real switching-point labels -------

TEST(ModelBakeoff, SvrIsCompetitiveOnSwitchingPointData) {
  // Real labelled data from the trainer (small config), split 75/25.
  core::TrainerConfig cfg;
  for (int scale : {10, 11, 12}) {
    for (int ef : {8, 16, 32}) {
      for (std::uint64_t seed : {1ULL, 2ULL}) {
        graph::RmatParams p;
        p.scale = scale;
        p.edgefactor = ef;
        p.seed = seed;
        cfg.graphs.push_back(p);
      }
    }
  }
  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  const sim::ArchSpec gpu = sim::make_kepler_gpu();
  cfg.arch_pairs = {{cpu, cpu}, {gpu, gpu}, {cpu, gpu}};
  cfg.candidates = core::SwitchCandidates::coarse_grid();
  const core::TrainingData data = core::generate_training_data(cfg);

  const SplitResult split = train_test_split(data.m_data, 0.75, 11);
  const SvrModel svr = SvrModel::fit(split.train, {.c = 10, .epsilon = 0.1});
  const RidgeModel ridge = RidgeModel::fit(split.train);
  const KnnModel knn = KnnModel::fit(split.train, {.k = 3});
  const TreeModel tree = TreeModel::fit(split.train);

  const double mse_svr =
      mean_squared_error(split.test.y, svr.predict_all(split.test));
  const double mse_ridge =
      mean_squared_error(split.test.y, ridge.predict_all(split.test));
  const double mse_knn =
      mean_squared_error(split.test.y, knn.predict_all(split.test));
  const double mse_tree =
      mean_squared_error(split.test.y, tree.predict_all(split.test));

  // The paper's claim is qualitative ("SVM can get good prediction
  // accuracy even with small number of training samples"). The best-M
  // labels are intrinsically noisy — the optimum is a wide region and
  // the labeller tie-breaks to its lowest edge (see Table III bench) —
  // so no model dominates robustly here; we require the SVR to stay
  // within 2x of the best alternative, i.e. to be a defensible choice.
  const double best_alt = std::min({mse_ridge, mse_knn, mse_tree});
  EXPECT_LT(mse_svr, 2.0 * best_alt)
      << "svr=" << mse_svr << " ridge=" << mse_ridge << " knn=" << mse_knn
      << " tree=" << mse_tree;
  RecordProperty("mse_svr", std::to_string(mse_svr));
  RecordProperty("mse_ridge", std::to_string(mse_ridge));
  RecordProperty("mse_knn", std::to_string(mse_knn));
  RecordProperty("mse_tree", std::to_string(mse_tree));
}

}  // namespace
}  // namespace bfsx::ml
