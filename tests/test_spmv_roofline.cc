// Unit tests for the SpMV view of BFS and the RCMA/RCMB analysis
// (paper Section III-B).
#include <gtest/gtest.h>

#include "bfs/drivers.h"
#include "bfs/spmv.h"
#include "bfs/validate.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "graph/rmat.h"
#include "sim/roofline.h"

namespace bfsx {
namespace {

using bfs::CsrGraph;
using graph::build_csr;

TEST(SpmvLevel, CountsFrontierInNeighbours) {
  // Path 0-1-2-3, frontier {1}: y = in-neighbour counts of {1}.
  const CsrGraph g = build_csr(graph::make_path(4));
  std::vector<std::uint8_t> x = {0, 1, 0, 0};
  std::vector<std::int32_t> y;
  bfs::spmv_level(g, x, y);
  EXPECT_EQ(y, (std::vector<std::int32_t>{1, 0, 1, 0}));
}

TEST(SpmvLevel, MultipleFrontierNeighboursAccumulate) {
  // Star with hub 0; frontier = all spokes -> y[0] = spoke count.
  const CsrGraph g = build_csr(graph::make_star(6));
  std::vector<std::uint8_t> x = {0, 1, 1, 1, 1, 1};
  std::vector<std::int32_t> y;
  bfs::spmv_level(g, x, y);
  EXPECT_EQ(y[0], 5);
  for (std::size_t v = 1; v < 6; ++v) EXPECT_EQ(y[v], 0);
}

TEST(SpmvLevel, RejectsWrongWidth) {
  const CsrGraph g = build_csr(graph::make_path(4));
  std::vector<std::uint8_t> x = {1, 0};
  std::vector<std::int32_t> y;
  EXPECT_THROW(bfs::spmv_level(g, x, y), std::invalid_argument);
}

TEST(SpmvBfs, MatchesSerialLevelsOnRmat) {
  graph::RmatParams p;
  p.scale = 10;
  const CsrGraph g = build_csr(graph::generate_rmat(p));
  for (graph::vid_t root : graph::sample_roots(g, 3, 4)) {
    const bfs::BfsResult serial = bfs::run_serial(g, root);
    const bfs::BfsResult spmv = bfs::run_spmv_bfs(g, root);
    EXPECT_TRUE(bfs::same_levels(serial, spmv)) << "root " << root;
    EXPECT_TRUE(bfs::validate_bfs(g, root, spmv).ok);
    EXPECT_EQ(serial.edges_in_component, spmv.edges_in_component);
  }
}

TEST(SpmvBfs, RejectsBadRoot) {
  const CsrGraph g = build_csr(graph::make_path(3));
  EXPECT_THROW(bfs::run_spmv_bfs(g, 7), std::out_of_range);
}

TEST(Rcma, DenseMatchesPaperHalf) {
  // The paper computes 0.5 for the dense case (Equation 1).
  EXPECT_NEAR(bfs::rcma_dense_spmv(1'000'000), 0.5, 0.01);
  EXPECT_LT(bfs::rcma_dense_spmv(10), 0.5);
}

TEST(Rcma, SparseIsBelowDense) {
  const double sparse = bfs::rcma_sparse_bfs(1'000'000, 16'000'000);
  EXPECT_GT(sparse, 0.0);
  EXPECT_LT(sparse, 0.5);
}

TEST(Rcmb, MatchesTableTwo) {
  // Table II RCMB rows: SP 7.52 / 12.70 / 21.01, DP 3.76 / 6.35 / 7.02.
  EXPECT_NEAR(sim::rcmb(sim::make_sandy_bridge_cpu(), true), 7.52, 0.02);
  EXPECT_NEAR(sim::rcmb(sim::make_knights_corner_mic(), true), 12.70, 0.02);
  EXPECT_NEAR(sim::rcmb(sim::make_kepler_gpu(), true), 21.01, 0.02);
  EXPECT_NEAR(sim::rcmb(sim::make_sandy_bridge_cpu(), false), 3.76, 0.01);
  EXPECT_NEAR(sim::rcmb(sim::make_knights_corner_mic(), false), 6.35, 0.01);
  EXPECT_NEAR(sim::rcmb(sim::make_kepler_gpu(), false), 7.02, 0.01);
}

TEST(Roofline, BfsIsMemoryBoundEverywhere) {
  const double algo = bfs::rcma_sparse_bfs(1 << 20, 16 << 20);
  for (const sim::ArchSpec& arch :
       {sim::make_sandy_bridge_cpu(), sim::make_kepler_gpu(),
        sim::make_knights_corner_mic()}) {
    EXPECT_GT(sim::memory_bound_factor(algo, arch, true), 10.0) << arch.name;
  }
}

TEST(Roofline, AttainableGflopsCapsAtPeak) {
  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  // Very high intensity -> compute roof.
  EXPECT_DOUBLE_EQ(sim::roofline_gflops(cpu, 100.0, true), 256);
  // BFS-like intensity -> bandwidth roof.
  EXPECT_NEAR(sim::roofline_gflops(cpu, 0.12, true), 0.12 * 34, 1e-9);
}

TEST(Roofline, DescribeBalanceNamesTheVerdict) {
  const std::string verdict =
      sim::describe_balance(0.12, sim::make_kepler_gpu(), true);
  EXPECT_NE(verdict.find("memory-bound"), std::string::npos);
  EXPECT_NE(verdict.find("KeplerK20xGPU"), std::string::npos);
}

}  // namespace
}  // namespace bfsx
