// Property-based tests: BFS invariants over randomly generated graphs
// and over every executor in the library. Parameterised sweeps stand in
// for a quickcheck harness; each (generator, seed) cell is a distinct
// random instance.
#include <gtest/gtest.h>

#include "bfs/drivers.h"
#include "bfs/validate.h"
#include "core/adaptive_bfs.h"
#include "core/cross_arch_bfs.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "graph/rmat.h"

namespace bfsx {
namespace {

using bfs::BfsResult;
using graph::CsrGraph;
using graph::vid_t;

enum class Family { kErdosRenyiSparse, kErdosRenyiDense, kRmat, kLollipop };

CsrGraph make_graph(Family family, std::uint64_t seed) {
  switch (family) {
    case Family::kErdosRenyiSparse:
      return graph::build_csr(graph::make_erdos_renyi(2000, 3000, seed));
    case Family::kErdosRenyiDense:
      return graph::build_csr(graph::make_erdos_renyi(500, 20000, seed));
    case Family::kRmat: {
      graph::RmatParams p;
      p.scale = 11;
      p.seed = seed;
      return graph::build_csr(graph::generate_rmat(p));
    }
    case Family::kLollipop:
      return graph::build_csr(
          graph::make_lollipop(60, static_cast<vid_t>(40 + seed % 60)));
  }
  std::abort();
}

class BfsProperty
    : public ::testing::TestWithParam<std::tuple<Family, std::uint64_t>> {
 protected:
  CsrGraph g_ = make_graph(std::get<0>(GetParam()), std::get<1>(GetParam()));
  vid_t root_ = graph::sample_roots(g_, 1, std::get<1>(GetParam()) + 17)[0];
};

// Property: every engine produces a result the Graph 500 validator
// accepts, and all engines agree on the level map (levels are unique;
// parents may differ).
TEST_P(BfsProperty, AllEnginesAgreeAndValidate) {
  const BfsResult serial = bfs::run_serial(g_, root_);
  ASSERT_TRUE(bfs::validate_bfs(g_, root_, serial).ok);

  const BfsResult td = bfs::run_top_down(g_, root_);
  EXPECT_TRUE(bfs::validate_bfs(g_, root_, td).ok);
  EXPECT_TRUE(bfs::same_levels(serial, td));

  const BfsResult bu = bfs::run_bottom_up(g_, root_);
  EXPECT_TRUE(bfs::validate_bfs(g_, root_, bu).ok);
  EXPECT_TRUE(bfs::same_levels(serial, bu));

  const sim::Device cpu{sim::make_sandy_bridge_cpu()};
  const sim::Device gpu{sim::make_kepler_gpu()};
  const core::CombinationRun cb =
      core::run_combination(g_, root_, cpu, {14, 24});
  EXPECT_TRUE(bfs::validate_bfs(g_, root_, cb.result).ok);
  EXPECT_EQ(cb.result.level, serial.level);

  const core::CombinationRun cross = core::run_cross_arch(
      g_, root_, cpu, gpu, sim::InterconnectSpec{}, {20, 30}, {14, 24});
  EXPECT_TRUE(bfs::validate_bfs(g_, root_, cross.result).ok);
  EXPECT_EQ(cross.result.level, serial.level);
}

// Property: reached count equals the size of the root's connected
// component, and edges_in_component is consistent across engines.
TEST_P(BfsProperty, ReachedMatchesComponentStructure) {
  const BfsResult serial = bfs::run_serial(g_, root_);
  const BfsResult bu = bfs::run_bottom_up(g_, root_);
  EXPECT_EQ(serial.reached, bu.reached);
  EXPECT_EQ(serial.edges_in_component, bu.edges_in_component);
  EXPECT_GE(serial.reached, 1);
  EXPECT_LE(serial.reached, g_.num_vertices());
  // Every reached vertex's parent is also reached.
  for (vid_t v = 0; v < g_.num_vertices(); ++v) {
    const vid_t p = serial.parent[static_cast<std::size_t>(v)];
    if (p != graph::kNoVertex) {
      EXPECT_NE(serial.parent[static_cast<std::size_t>(p)], graph::kNoVertex);
    }
  }
}

// Property: level sets partition the reached set and each non-empty
// level is preceded by a non-empty level (no gaps).
TEST_P(BfsProperty, LevelSetsHaveNoGaps) {
  const BfsResult r = bfs::run_serial(g_, root_);
  std::int32_t max_level = 0;
  for (vid_t v = 0; v < g_.num_vertices(); ++v) {
    max_level = std::max(max_level, r.level[static_cast<std::size_t>(v)]);
  }
  std::vector<vid_t> level_count(static_cast<std::size_t>(max_level) + 1, 0);
  vid_t reached = 0;
  for (vid_t v = 0; v < g_.num_vertices(); ++v) {
    const std::int32_t lv = r.level[static_cast<std::size_t>(v)];
    if (lv >= 0) {
      ++level_count[static_cast<std::size_t>(lv)];
      ++reached;
    }
  }
  EXPECT_EQ(reached, r.reached);
  for (vid_t count : level_count) EXPECT_GT(count, 0);
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, BfsProperty,
    ::testing::Combine(::testing::Values(Family::kErdosRenyiSparse,
                                         Family::kErdosRenyiDense,
                                         Family::kRmat, Family::kLollipop),
                       ::testing::Values(1u, 2u, 3u)));

}  // namespace
}  // namespace bfsx
