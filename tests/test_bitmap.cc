// Unit tests for the frontier bitmap.
#include "graph/bitmap.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace bfsx::graph {
namespace {

TEST(Bitmap, StartsCleared) {
  Bitmap bm(130);
  EXPECT_EQ(bm.size(), 130u);
  EXPECT_EQ(bm.count(), 0u);
  for (std::size_t i = 0; i < 130; ++i) EXPECT_FALSE(bm.test(i));
}

TEST(Bitmap, SetAndTest) {
  Bitmap bm(200);
  bm.set(0);
  bm.set(63);
  bm.set(64);
  bm.set(199);
  EXPECT_TRUE(bm.test(0));
  EXPECT_TRUE(bm.test(63));
  EXPECT_TRUE(bm.test(64));
  EXPECT_TRUE(bm.test(199));
  EXPECT_FALSE(bm.test(1));
  EXPECT_FALSE(bm.test(65));
  EXPECT_EQ(bm.count(), 4u);
}

TEST(Bitmap, ClearBit) {
  Bitmap bm(64);
  bm.set(10);
  bm.clear(10);
  EXPECT_FALSE(bm.test(10));
  EXPECT_EQ(bm.count(), 0u);
}

TEST(Bitmap, ResetClearsAll) {
  Bitmap bm(100);
  for (std::size_t i = 0; i < 100; i += 3) bm.set(i);
  bm.reset();
  EXPECT_EQ(bm.count(), 0u);
  EXPECT_EQ(bm.size(), 100u);
}

TEST(Bitmap, ResizeAndReset) {
  Bitmap bm(10);
  bm.set(5);
  bm.resize_and_reset(500);
  EXPECT_EQ(bm.size(), 500u);
  EXPECT_EQ(bm.count(), 0u);
}

TEST(Bitmap, TestAndSetReportsFirstClaim) {
  Bitmap bm(64);
  EXPECT_TRUE(bm.test_and_set_atomic(7));
  EXPECT_FALSE(bm.test_and_set_atomic(7));
  EXPECT_TRUE(bm.test(7));
}

TEST(Bitmap, ForEachSetVisitsAscending) {
  Bitmap bm(300);
  const std::vector<vid_t> want = {1, 63, 64, 65, 128, 299};
  for (vid_t v : want) bm.set(static_cast<std::size_t>(v));
  std::vector<vid_t> got;
  bm.for_each_set([&got](vid_t v) { got.push_back(v); });
  EXPECT_EQ(got, want);
}

TEST(Bitmap, SwapIsConstantTimeExchange) {
  Bitmap a(64);
  Bitmap b(128);
  a.set(1);
  b.set(100);
  a.swap(b);
  EXPECT_EQ(a.size(), 128u);
  EXPECT_TRUE(a.test(100));
  EXPECT_EQ(b.size(), 64u);
  EXPECT_TRUE(b.test(1));
}

TEST(Bitmap, ConcurrentTestAndSetClaimsEachBitOnce) {
  constexpr std::size_t kBits = 1 << 14;
  Bitmap bm(kBits);
  constexpr int kThreads = 4;
  std::vector<std::size_t> claims(kThreads, 0);
  {
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&bm, &claims, t] {
        std::size_t mine = 0;
        for (std::size_t i = 0; i < kBits; ++i) {
          if (bm.test_and_set_atomic(i)) ++mine;
        }
        claims[static_cast<std::size_t>(t)] = mine;
      });
    }
    for (auto& w : workers) w.join();
  }
  std::size_t total = 0;
  for (std::size_t c : claims) total += c;
  EXPECT_EQ(total, kBits);  // every bit claimed exactly once
  EXPECT_EQ(bm.count(), kBits);
}

TEST(Bitmap, CountMatchesPopulationAcrossWordBoundaries) {
  Bitmap bm(1000);
  std::size_t want = 0;
  for (std::size_t i = 0; i < 1000; i += 7) {
    bm.set(i);
    ++want;
  }
  EXPECT_EQ(bm.count(), want);
}

}  // namespace
}  // namespace bfsx::graph
