// Unit tests for k-fold cross-validation and SVR grid search.
#include "ml/cross_validation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

#include "graph/prng.h"
#include "ml/linreg.h"

namespace bfsx::ml {
namespace {

Dataset linear_noise(int n, std::uint64_t seed, double noise) {
  graph::Xoshiro256ss rng(seed);
  Dataset d;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_double() * 4 - 2;
    d.add({x}, 3 * x + noise * (rng.next_double() - 0.5));
  }
  return d;
}

ModelFactory ridge_factory(double lambda = 1e-6) {
  return [lambda](const Dataset& train) {
    auto model =
        std::make_shared<RidgeModel>(RidgeModel::fit(train, {lambda}));
    return [model](std::span<const double> x) { return model->predict(x); };
  };
}

ModelFactory mean_factory() {
  return [](const Dataset& train) {
    double mean = 0;
    for (double y : train.y) mean += y;
    mean /= static_cast<double>(train.size());
    return [mean](std::span<const double>) { return mean; };
  };
}

TEST(KFold, GoodModelScoresNearNoiseFloor) {
  const Dataset d = linear_noise(120, 3, 0.1);
  const double mse = k_fold_mse(d, ridge_factory(), 5);
  // Residual noise is uniform(-0.05, 0.05): variance ~ 0.00083.
  EXPECT_LT(mse, 0.004);
}

TEST(KFold, RanksModelsCorrectly) {
  const Dataset d = linear_noise(120, 5, 0.1);
  EXPECT_LT(k_fold_mse(d, ridge_factory(), 5),
            k_fold_mse(d, mean_factory(), 5));
}

TEST(KFold, IsDeterministicUnderSeed) {
  const Dataset d = linear_noise(60, 9, 0.3);
  EXPECT_DOUBLE_EQ(k_fold_mse(d, ridge_factory(), 4, 7),
                   k_fold_mse(d, ridge_factory(), 4, 7));
}

TEST(KFold, EveryFoldIsEvaluatedExactlyOnce) {
  // The factory counts training-set sizes: with k folds over n rows,
  // each fold's test size is n/k (+-1) and train+test = n.
  const int n = 53;
  const int k = 5;
  const Dataset d = linear_noise(n, 2, 0.1);
  int calls = 0;
  ModelFactory counting = [&calls, n](const Dataset& train) {
    ++calls;
    EXPECT_LT(train.size(), static_cast<std::size_t>(n));
    EXPECT_GE(train.size(), static_cast<std::size_t>(n - n / 5 - 2));
    return [](std::span<const double>) { return 0.0; };
  };
  (void)k_fold_mse(d, counting, k);
  EXPECT_EQ(calls, k);
}

TEST(KFold, RejectsBadK) {
  const Dataset d = linear_noise(10, 1, 0.1);
  EXPECT_THROW(k_fold_mse(d, mean_factory(), 1), std::invalid_argument);
  EXPECT_THROW(k_fold_mse(d, mean_factory(), 11), std::invalid_argument);
}

TEST(TuneSvr, PicksReasonableHyperparameters) {
  // y = sin(2x): needs an RBF with adequate gamma and a tight tube.
  graph::Xoshiro256ss rng(11);
  Dataset d;
  for (int i = 0; i < 90; ++i) {
    const double x = rng.next_double() * 3;
    d.add({x}, std::sin(2 * x));
  }
  const SvrSearchResult result = tune_svr(d, {}, 3);
  EXPECT_EQ(result.evaluated, 27);  // 3 x 3 x 3 default grid
  EXPECT_LT(result.best_mse, 0.05);
  // The widest tube (0.3) cannot be optimal for a clean signal of
  // amplitude 1 when 0.01 is available.
  EXPECT_LT(result.best.epsilon, 0.3);
}

TEST(TuneSvr, RejectsEmptyGrid) {
  const Dataset d = linear_noise(20, 1, 0.1);
  SvrGrid grid;
  grid.c_values.clear();
  EXPECT_THROW(tune_svr(d, grid), std::invalid_argument);
}

}  // namespace
}  // namespace bfsx::ml
