// Tests for the memory-subsystem tuning knobs (bfs/mem_tuning.h):
// prefetch and hub-cache result equality against the untuned kernels,
// the scratch-reuse contract of the top-down step (no steady-state
// allocation), and the bottom-up candidate list's right-sized reserve.
#include "bfs/mem_tuning.h"

#include <gtest/gtest.h>

#include <omp.h>

#include <cstdint>
#include <vector>

#include "bfs/bottomup.h"
#include "bfs/drivers.h"
#include "bfs/frontier.h"
#include "bfs/hub_cache.h"
#include "bfs/state.h"
#include "bfs/topdown.h"
#include "core/hybrid_policy.h"
#include "graph/builder.h"
#include "graph/graph_stats.h"
#include "graph/rmat.h"
#include "graph/view.h"

namespace bfsx::bfs {
namespace {

graph::CsrGraph rmat(int scale, std::uint64_t seed = 2014) {
  graph::RmatParams p;
  p.scale = scale;
  p.edgefactor = 16;
  p.seed = seed;
  return graph::build_csr(graph::generate_rmat(p));
}

/// Full hybrid traversal with explicit tuning; returns the final state
/// so tests can inspect scratch capacities.
BfsState traverse_hybrid(const graph::CsrGraphView& g, graph::vid_t root,
                         MemTuning tuning, BottomUpStats* bu_totals = nullptr) {
  const core::HybridPolicy policy{};
  BfsState state(g.num_vertices(), root);
  while (!state.frontier_empty()) {
    const graph::eid_t e_cq = frontier_out_edges(g, state.frontier_queue);
    const auto v_cq = static_cast<graph::vid_t>(state.frontier_queue.size());
    if (policy.decide(e_cq, v_cq, g.num_edges(), g.num_vertices()) ==
        Direction::kTopDown) {
      top_down_step(g, state, tuning);
    } else {
      const BottomUpStats s = bottom_up_step(g, state, tuning);
      if (bu_totals != nullptr) {
        bu_totals->hub_probes += s.hub_probes;
        bu_totals->hub_hits += s.hub_hits;
      }
    }
  }
  return state;
}

// --- prefetch -------------------------------------------------------

TEST(Prefetch, TraversalBitEqualToUntuned) {
  const graph::CsrGraph g = rmat(14);
  const graph::CsrGraphView view(g);
  const graph::vid_t root = graph::sample_roots(g, 1, 500)[0];
  for (const int threads : {1, 4}) {
    omp_set_num_threads(threads);
    BfsState plain = traverse_hybrid(view, root, MemTuning{});
    MemTuning tuned;
    tuned.prefetch.distance = 8;
    BfsState pf = traverse_hybrid(view, root, tuned);
    // Prefetching is a pure hint: identical discovery order, so parents
    // — not just levels — must match bit for bit.
    ASSERT_EQ(plain.reached, pf.reached);
    ASSERT_EQ(plain.parent, pf.parent);
    ASSERT_EQ(plain.level, pf.level);
  }
}

TEST(Prefetch, DistanceZeroIsTheDefault) {
  EXPECT_FALSE(PrefetchConfig{}.enabled());
  PrefetchConfig on;
  on.distance = 1;
  EXPECT_TRUE(on.enabled());
  EXPECT_EQ(MemTuning{}.hub_cache, nullptr);
}

// --- hub cache ------------------------------------------------------

TEST(HubCacheTuning, LevelsExactParentsValid) {
  const graph::CsrGraph g = rmat(14);
  const graph::CsrGraphView view(g);
  const HubCache hub(g, 512);
  ASSERT_GT(hub.num_hubs(), 0u);
  const graph::vid_t root = graph::sample_roots(g, 1, 500)[0];
  for (const int threads : {1, 4}) {
    omp_set_num_threads(threads);
    BfsState plain = traverse_hybrid(view, root, MemTuning{});
    MemTuning tuned;
    tuned.hub_cache = &hub;
    BottomUpStats totals;
    BfsState cached = traverse_hybrid(view, root, tuned, &totals);
    // Distances are exact (a hub in-neighbour is an in-neighbour);
    // parents may legally differ, but every parent must be a real
    // in-neighbour one level up.
    ASSERT_EQ(plain.reached, cached.reached);
    ASSERT_EQ(plain.level, cached.level);
    for (std::size_t v = 0; v < cached.parent.size(); ++v) {
      const graph::vid_t p = cached.parent[v];
      if (p == graph::kNoVertex || static_cast<graph::vid_t>(v) == root) {
        continue;
      }
      ASSERT_EQ(cached.level[v],
                cached.level[static_cast<std::size_t>(p)] + 1)
          << v;
      ASSERT_TRUE(g.has_edge(p, static_cast<graph::vid_t>(v))) << v;
    }
    // Mid-traversal levels of an R-MAT graph probe hubs constantly; a
    // zero hit count would mean the cache never engaged.
    EXPECT_GT(totals.hub_probes, 0);
    EXPECT_GT(totals.hub_hits, 0);
    EXPECT_LE(totals.hub_hits, totals.hub_probes);
  }
}

TEST(HubCacheTuning, SnapshotTracksFrontierMembership) {
  const graph::CsrGraph g = rmat(10);
  const HubCache hub(g, 64);
  ASSERT_GT(hub.num_hubs(), 0u);
  graph::Bitmap frontier(static_cast<std::size_t>(g.num_vertices()));
  // Put hubs of even rank in the frontier.
  for (std::size_t r = 0; r < hub.num_hubs(); r += 2) {
    frontier.set(static_cast<std::size_t>(
        hub.hub(static_cast<std::uint16_t>(r))));
  }
  graph::Bitmap bits(0);
  hub.snapshot_frontier(frontier, bits);
  ASSERT_EQ(bits.size(), hub.num_hubs());
  for (std::size_t r = 0; r < hub.num_hubs(); ++r) {
    EXPECT_EQ(bits.test(r), r % 2 == 0) << r;
  }
  // Re-snapshot after clearing: stale bits must not survive.
  frontier.reset();
  hub.snapshot_frontier(frontier, bits);
  for (std::size_t r = 0; r < hub.num_hubs(); ++r) {
    EXPECT_FALSE(bits.test(r)) << r;
  }
}

TEST(HubCacheTuning, ZeroKDisables) {
  const graph::CsrGraph g = rmat(10);
  const HubCache hub(g, 0);
  EXPECT_EQ(hub.num_hubs(), 0u);
  EXPECT_EQ(hub.total_hub_entries(), 0u);
  // A zero-hub cache on the tuning struct must be equivalent to no
  // cache at all (the kernel drops to the stock path).
  const graph::CsrGraphView view(g);
  const graph::vid_t root = graph::sample_roots(g, 1, 11)[0];
  MemTuning tuned;
  tuned.hub_cache = &hub;
  BottomUpStats totals;
  BfsState cached = traverse_hybrid(view, root, tuned, &totals);
  BfsState plain = traverse_hybrid(view, root, MemTuning{});
  EXPECT_EQ(totals.hub_probes, 0);
  EXPECT_EQ(cached.parent, plain.parent);
  EXPECT_EQ(cached.level, plain.level);
}

// --- scratch reuse (S1) ---------------------------------------------

TEST(TopDownScratch, CapacityStableAcrossRepeatTraversals) {
  // Serial team: the dynamic schedule degenerates to one deterministic
  // thread, so per-part discovery counts — and therefore high-water
  // capacities — are identical run to run. (With >1 thread the chunk
  // assignment is scheduler-dependent and capacities are only
  // eventually stable, which a unit test cannot pin.)
  const graph::CsrGraph g = rmat(14);
  const graph::CsrGraphView view(g);
  const graph::vid_t root = graph::sample_roots(g, 1, 500)[0];
  omp_set_num_threads(1);

  BfsState state(g.num_vertices(), root);
  // Warm-up runs: buffers reach their high-water marks, and the
  // td_next/frontier_queue swap pair settles (the pair alternates
  // storage, so both sides need one full traversal to size up).
  for (int run = 0; run < 2; ++run) {
    state.reset(g.num_vertices(), root);
    while (!state.frontier_empty()) top_down_step(view, state);
  }
  ASSERT_FALSE(state.td_local_next.empty());
  std::vector<std::size_t> part_caps;
  for (const auto& part : state.td_local_next) {
    part_caps.push_back(part.capacity());
  }
  const std::size_t next_cap = state.td_next.capacity();
  const std::size_t queue_cap = state.frontier_queue.capacity();

  // Steady state: a further traversal must not grow any buffer — zero
  // growth means zero steady-state allocation.
  state.reset(g.num_vertices(), root);
  while (!state.frontier_empty()) top_down_step(view, state);
  ASSERT_EQ(state.td_local_next.size(), part_caps.size());
  for (std::size_t i = 0; i < part_caps.size(); ++i) {
    EXPECT_EQ(state.td_local_next[i].capacity(), part_caps[i]) << i;
  }
  EXPECT_EQ(state.td_next.capacity(), next_cap);
  EXPECT_EQ(state.frontier_queue.capacity(), queue_cap);
}

TEST(TopDownScratch, ParallelRunsKeepTeamWidthAndResults) {
  const graph::CsrGraph g = rmat(12);
  const graph::CsrGraphView view(g);
  const graph::vid_t root = graph::sample_roots(g, 1, 500)[0];
  omp_set_num_threads(4);
  BfsState state(g.num_vertices(), root);
  while (!state.frontier_empty()) top_down_step(view, state);
  const std::size_t parts = state.td_local_next.size();
  ASSERT_GE(parts, 1u);
  const vid_t reached_first = state.reached;
  // Reuse across runs never re-sizes the per-thread buffer vector and
  // reproduces the traversal exactly.
  for (int run = 0; run < 2; ++run) {
    state.reset(g.num_vertices(), root);
    while (!state.frontier_empty()) top_down_step(view, state);
    EXPECT_EQ(state.td_local_next.size(), parts);
    EXPECT_EQ(state.reached, reached_first);
  }
}

TEST(TopDownScratch, ResetClearsPartsButKeepsCapacity) {
  const graph::CsrGraph g = rmat(10);
  const graph::CsrGraphView view(g);
  BfsState state(g.num_vertices(), graph::vid_t{0});
  while (!state.frontier_empty()) top_down_step(view, state);
  const std::size_t caps = state.td_next.capacity();
  state.reset(g.num_vertices(), graph::vid_t{1});
  EXPECT_TRUE(state.td_next.empty());
  for (const auto& part : state.td_local_next) EXPECT_TRUE(part.empty());
  EXPECT_EQ(state.td_next.capacity(), caps);
}

// --- bottom-up reserve (S2) -----------------------------------------

TEST(BottomUpReserve, UnvisitedReservesRemainderNotWholeGraph) {
  const graph::CsrGraph g = rmat(14);
  const auto n = static_cast<std::size_t>(g.num_vertices());
  const graph::vid_t root = graph::sample_roots(g, 1, 500)[0];
  omp_set_num_threads(1);

  // Run top-down until a sizable share of the graph is visited, then
  // prime the candidate list via one bottom-up step.
  BfsState state(g, root);
  while (!state.frontier_empty() &&
         static_cast<std::size_t>(state.reached) < n / 4) {
    top_down_step(g, state);
  }
  ASSERT_FALSE(state.frontier_empty()) << "graph too small for the scenario";
  const auto reached_before = static_cast<std::size_t>(state.reached);
  ASSERT_GT(reached_before, 1u);
  bottom_up_step(g, state);
  ASSERT_TRUE(state.unvisited_primed);
  // Regression pin for the right-sized reserve: the serial prime used
  // to reserve n slots; it must now hold at most n - reached_before.
  EXPECT_LE(state.unvisited.capacity(), n - reached_before);
  EXPECT_GE(state.unvisited.capacity(), state.unvisited.size());
}

}  // namespace
}  // namespace bfsx::bfs
