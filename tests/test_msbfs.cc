// MS-BFS equivalence and determinism tests: every lane of the
// bit-parallel kernel must be indistinguishable (levels, counters,
// totals) from a single-source traversal of the same root.
#include "bfs/msbfs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bfs/state_pool.h"
#include "bfs/topdown.h"
#include "bfs/validate.h"
#include "core/level_trace.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "graph/rmat.h"
#include "graph500/reference_bfs.h"

namespace bfsx::bfs {
namespace {

using graph::build_csr;
using graph::build_directed_csr;
using graph::CsrGraph;
using graph::EdgeList;

CsrGraph rmat(int scale, int edgefactor = 16, std::uint64_t seed = 7) {
  graph::RmatParams p;
  p.scale = scale;
  p.edgefactor = edgefactor;
  p.seed = seed;
  return build_csr(graph::generate_rmat(p));
}

/// Checks one lane against the serial oracle: exact levels, exact
/// totals, and a structurally valid parent tree.
void expect_lane_matches_reference(const CsrGraph& g, vid_t root,
                                   const BfsResult& lane) {
  const BfsResult ref = graph500::reference_bfs(g, root);
  EXPECT_EQ(lane.level, ref.level) << "root " << root;
  EXPECT_EQ(lane.reached, ref.reached) << "root " << root;
  EXPECT_EQ(lane.edges_in_component, ref.edges_in_component)
      << "root " << root;
  const ValidationReport rep = validate_bfs(g, root, lane);
  EXPECT_TRUE(rep.ok) << "root " << root << "\n" << rep.format();
}

TEST(MsBfs, FullBatchMatchesReferenceOnRmat) {
  const CsrGraph g = rmat(12);
  const std::vector<vid_t> roots =
      graph::sample_roots(g, kMsBfsMaxLanes, 500);
  const MsBfsResult ms = ms_bfs(g, roots);
  ASSERT_EQ(ms.per_root.size(), roots.size());
  ASSERT_EQ(ms.lane_levels.size(), roots.size());
  for (std::size_t i = 0; i < roots.size(); ++i) {
    expect_lane_matches_reference(g, roots[i], ms.per_root[i]);
  }
}

// The acceptance bar of this subsystem: a full 64-root batch on R-MAT
// scale 16 with per-lane counters bit-equal to the single-source
// LevelTrace — the M/N switching inputs stay exact per root.
TEST(MsBfs, Scale16CountersMatchLevelTrace) {
  const CsrGraph g = rmat(16);
  const std::vector<vid_t> roots =
      graph::sample_roots(g, kMsBfsMaxLanes, 500);
  const MsBfsResult ms = ms_bfs(g, roots);
  ASSERT_EQ(ms.lane_levels.size(), roots.size());
  for (std::size_t i = 0; i < roots.size(); ++i) {
    const BfsResult ref = graph500::reference_bfs(g, roots[i]);
    ASSERT_EQ(ms.per_root[i].level, ref.level) << "root " << roots[i];
    const core::LevelTrace trace = core::build_level_trace(g, roots[i]);
    const std::vector<MsLaneLevel>& lane = ms.lane_levels[i];
    ASSERT_EQ(lane.size(), trace.levels.size()) << "root " << roots[i];
    for (std::size_t k = 0; k < lane.size(); ++k) {
      EXPECT_EQ(lane[k].level, trace.levels[k].level);
      EXPECT_EQ(lane[k].frontier_vertices, trace.levels[k].frontier_vertices)
          << "root " << roots[i] << " level " << k;
      EXPECT_EQ(lane[k].frontier_edges, trace.levels[k].frontier_edges)
          << "root " << roots[i] << " level " << k;
      EXPECT_EQ(lane[k].next_vertices, trace.levels[k].next_vertices)
          << "root " << roots[i] << " level " << k;
    }
  }
}

TEST(MsBfs, DirectedGraphMatchesReference) {
  // Directed CSR: bottom-up scans in-neighbors, top-down out-neighbors;
  // both must produce the directed-BFS levels of the oracle.
  const EdgeList el = graph::make_erdos_renyi(400, 2'000, 13);
  const CsrGraph g = build_directed_csr(EdgeList(el));
  ASSERT_FALSE(g.is_symmetric());
  const std::vector<vid_t> roots = graph::sample_roots(g, 17, 23);
  for (const MsBfsOptions::Mode mode :
       {MsBfsOptions::Mode::kAuto, MsBfsOptions::Mode::kTopDown,
        MsBfsOptions::Mode::kBottomUp}) {
    MsBfsOptions opts;
    opts.mode = mode;
    const MsBfsResult ms = ms_bfs(g, roots, opts);
    for (std::size_t i = 0; i < roots.size(); ++i) {
      const BfsResult ref = graph500::reference_bfs(g, roots[i]);
      EXPECT_EQ(ms.per_root[i].level, ref.level)
          << "mode " << static_cast<int>(mode) << " root " << roots[i];
      EXPECT_EQ(ms.per_root[i].edges_in_component, ref.edges_in_component);
    }
  }
}

TEST(MsBfs, SmallAndDuplicateBatches) {
  const CsrGraph g = rmat(10, 8, 3);
  // A batch of one, a batch of identical roots, and a ragged batch with
  // duplicates — duplicate roots must yield independent identical lanes.
  const std::vector<std::vector<vid_t>> batches = {
      {1},
      {5, 5, 5},
      {0, 9, 0, 31, 9, 2, 77, 0, 5, 5, 12, 200, 31}};
  for (const std::vector<vid_t>& roots : batches) {
    const MsBfsResult ms = ms_bfs(g, roots);
    ASSERT_EQ(ms.per_root.size(), roots.size());
    for (std::size_t i = 0; i < roots.size(); ++i) {
      expect_lane_matches_reference(g, roots[i], ms.per_root[i]);
      // Same-root lanes agree exactly, counters included.
      for (std::size_t j = 0; j < i; ++j) {
        if (roots[j] != roots[i]) continue;
        EXPECT_EQ(ms.per_root[i].level, ms.per_root[j].level);
        ASSERT_EQ(ms.lane_levels[i].size(), ms.lane_levels[j].size());
        for (std::size_t k = 0; k < ms.lane_levels[i].size(); ++k) {
          EXPECT_EQ(ms.lane_levels[i][k].frontier_edges,
                    ms.lane_levels[j][k].frontier_edges);
        }
      }
    }
  }
}

TEST(MsBfs, ForcedDirectionsAgreeWithAuto) {
  const CsrGraph g = rmat(11, 16, 21);
  const std::vector<vid_t> roots = graph::sample_roots(g, 32, 9);
  MsBfsOptions td, bu;
  td.mode = MsBfsOptions::Mode::kTopDown;
  bu.mode = MsBfsOptions::Mode::kBottomUp;
  const MsBfsResult auto_run = ms_bfs(g, roots);
  const MsBfsResult td_run = ms_bfs(g, roots, td);
  const MsBfsResult bu_run = ms_bfs(g, roots, bu);
  EXPECT_GT(auto_run.direction_switches, 0);  // scale 11 should flip
  for (std::size_t i = 0; i < roots.size(); ++i) {
    EXPECT_EQ(td_run.per_root[i].level, auto_run.per_root[i].level);
    EXPECT_EQ(bu_run.per_root[i].level, auto_run.per_root[i].level);
    // Counters are direction-independent (they describe level sets).
    ASSERT_EQ(td_run.lane_levels[i].size(), auto_run.lane_levels[i].size());
    ASSERT_EQ(bu_run.lane_levels[i].size(), auto_run.lane_levels[i].size());
    for (std::size_t k = 0; k < auto_run.lane_levels[i].size(); ++k) {
      EXPECT_EQ(td_run.lane_levels[i][k].frontier_edges,
                auto_run.lane_levels[i][k].frontier_edges);
      EXPECT_EQ(bu_run.lane_levels[i][k].frontier_vertices,
                auto_run.lane_levels[i][k].frontier_vertices);
    }
  }
}

TEST(MsBfs, UnionLevelsAreConsistent) {
  const CsrGraph g = rmat(12);
  const std::vector<vid_t> roots = graph::sample_roots(g, 48, 11);
  const MsBfsResult ms = ms_bfs(g, roots);
  ASSERT_EQ(ms.depth, static_cast<std::int32_t>(ms.levels.size()));
  for (std::size_t k = 0; k < ms.levels.size(); ++k) {
    const MsUnionLevel& u = ms.levels[k];
    EXPECT_EQ(u.level, static_cast<std::int32_t>(k));
    EXPECT_GT(u.frontier_vertices, 0);
    // The union frontier is at most the sum of the lane frontiers and
    // at least the largest lane frontier.
    graph::vid_t max_lane = 0;
    std::int64_t sum_lane = 0;
    for (const std::vector<MsLaneLevel>& lane : ms.lane_levels) {
      if (k < lane.size()) {
        max_lane = std::max(max_lane, lane[k].frontier_vertices);
        sum_lane += lane[k].frontier_vertices;
      }
    }
    EXPECT_GE(u.frontier_vertices, max_lane);
    EXPECT_LE(static_cast<std::int64_t>(u.frontier_vertices), sum_lane);
  }
}

#ifdef _OPENMP
TEST(MsBfs, ThreadCountInvariance) {
  const CsrGraph g = rmat(12, 16, 5);
  const std::vector<vid_t> roots = graph::sample_roots(g, 40, 77);
  const int saved = omp_get_max_threads();
  omp_set_num_threads(1);
  const MsBfsResult one = ms_bfs(g, roots);
  omp_set_num_threads(4);
  const MsBfsResult four = ms_bfs(g, roots);
  omp_set_num_threads(saved);
  ASSERT_EQ(one.per_root.size(), four.per_root.size());
  EXPECT_EQ(one.depth, four.depth);
  EXPECT_EQ(one.direction_switches, four.direction_switches);
  for (std::size_t i = 0; i < roots.size(); ++i) {
    EXPECT_EQ(one.per_root[i].level, four.per_root[i].level);
    EXPECT_EQ(one.per_root[i].reached, four.per_root[i].reached);
    EXPECT_EQ(one.per_root[i].edges_in_component,
              four.per_root[i].edges_in_component);
  }
  for (std::size_t k = 0; k < one.levels.size(); ++k) {
    EXPECT_EQ(one.levels[k].direction, four.levels[k].direction);
    EXPECT_EQ(one.levels[k].frontier_edges, four.levels[k].frontier_edges);
  }
}
#endif  // _OPENMP

TEST(MsBfs, RejectsBadBatches) {
  const CsrGraph g = build_csr(graph::make_path(8));
  EXPECT_THROW((void)ms_bfs(g, std::vector<vid_t>{}), std::invalid_argument);
  const std::vector<vid_t> oversized(kMsBfsMaxLanes + 1, 0);
  EXPECT_THROW((void)ms_bfs(g, oversized), std::invalid_argument);
  EXPECT_THROW((void)ms_bfs(g, std::vector<vid_t>{-1}),
               std::invalid_argument);
  EXPECT_THROW((void)ms_bfs(g, std::vector<vid_t>{8}),
               std::invalid_argument);
}

// --- StatePool -----------------------------------------------------------

TEST(StatePool, ReusesReleasedStates) {
  const CsrGraph g = build_csr(graph::make_path(16));
  StatePool pool;
  EXPECT_EQ(pool.created(), 0u);
  EXPECT_EQ(pool.idle(), 0u);
  {
    StatePool::Lease lease = pool.acquire(g, 0);
    EXPECT_EQ(pool.created(), 1u);
    EXPECT_EQ(pool.idle(), 0u);
  }
  EXPECT_EQ(pool.idle(), 1u);
  {
    StatePool::Lease a = pool.acquire(g, 3);
    EXPECT_EQ(pool.created(), 1u);  // reused, not re-made
    StatePool::Lease b = pool.acquire(g, 5);
    EXPECT_EQ(pool.created(), 2u);  // pool empty, so a second state
    EXPECT_EQ(a->parent[3], 3);
    EXPECT_EQ(b->parent[5], 5);
  }
  EXPECT_EQ(pool.idle(), 2u);
}

TEST(StatePool, ResetStateTraversesLikeFresh) {
  const CsrGraph g = rmat(10, 8, 17);
  StatePool pool;
  // Dirty a state with one full traversal, return it, then reuse it on
  // a different root; the reused traversal must match a fresh one.
  {
    StatePool::Lease lease = pool.acquire(g, 2);
    while (!lease->frontier_empty()) top_down_step(g, *lease);
    (void)std::move(*lease).take_result(g);
  }
  StatePool::Lease reused = pool.acquire(g, 9);
  ASSERT_EQ(pool.created(), 1u);
  while (!reused->frontier_empty()) top_down_step(g, *reused);
  const BfsResult got = std::move(*reused).take_result(g);
  const BfsResult want = graph500::reference_bfs(g, 9);
  EXPECT_EQ(got.level, want.level);
  EXPECT_EQ(got.reached, want.reached);
  EXPECT_EQ(got.edges_in_component, want.edges_in_component);
  EXPECT_TRUE(validate_bfs(g, 9, got).ok);
}

TEST(StatePool, LeaseIsMovable) {
  const CsrGraph g = build_csr(graph::make_path(8));
  StatePool pool;
  StatePool::Lease a = pool.acquire(g, 0);
  StatePool::Lease b = std::move(a);
  EXPECT_EQ(b->level[0], 0);
  StatePool::Lease c = pool.acquire(g, 1);
  c = std::move(b);  // releases c's state back to the pool
  EXPECT_EQ(pool.idle(), 1u);
  EXPECT_EQ(c->level[0], 0);
}

}  // namespace
}  // namespace bfsx::bfs
