// Unit tests for the Graph 500-style validator, including negative
// cases with deliberately corrupted results.
#include "bfs/validate.h"

#include <gtest/gtest.h>

#include "bfs/drivers.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "graph/rmat.h"

namespace bfsx::bfs {
namespace {

using graph::build_csr;

CsrGraph small_rmat() {
  graph::RmatParams p;
  p.scale = 9;
  return build_csr(graph::generate_rmat(p));
}

TEST(Validate, AcceptsCorrectSerialResult) {
  const CsrGraph g = small_rmat();
  const auto roots = graph::sample_roots(g, 4, 1);
  for (vid_t root : roots) {
    const BfsResult r = run_serial(g, root);
    const ValidationReport rep = validate_bfs(g, root, r);
    EXPECT_TRUE(rep.ok) << rep.error;
  }
}

TEST(Validate, AcceptsParallelResults) {
  const CsrGraph g = small_rmat();
  const auto roots = graph::sample_roots(g, 2, 1);
  for (vid_t root : roots) {
    EXPECT_TRUE(validate_bfs(g, root, run_top_down(g, root)).ok);
    EXPECT_TRUE(validate_bfs(g, root, run_bottom_up(g, root)).ok);
  }
}

TEST(Validate, RejectsRootOutOfRange) {
  const CsrGraph g = build_csr(graph::make_path(4));
  const BfsResult r = run_serial(g, 0);
  EXPECT_FALSE(validate_bfs(g, -1, r).ok);
  EXPECT_FALSE(validate_bfs(g, 4, r).ok);
}

TEST(Validate, RejectsNonSelfParentRoot) {
  const CsrGraph g = build_csr(graph::make_path(4));
  BfsResult r = run_serial(g, 0);
  r.parent[0] = 1;
  EXPECT_FALSE(validate_bfs(g, 0, r).ok);
}

TEST(Validate, RejectsLevelSkip) {
  const CsrGraph g = build_csr(graph::make_path(5));
  BfsResult r = run_serial(g, 0);
  r.level[3] = 5;  // claims distance 5 on a path where it is 3
  EXPECT_FALSE(validate_bfs(g, 0, r).ok);
}

TEST(Validate, RejectsPhantomTreeEdge) {
  const CsrGraph g = build_csr(graph::make_path(5));
  BfsResult r = run_serial(g, 0);
  r.parent[4] = 0;  // (0,4) is not an edge
  r.level[4] = 1;
  EXPECT_FALSE(validate_bfs(g, 0, r).ok);
}

TEST(Validate, RejectsParentLevelDisagreement) {
  const CsrGraph g = build_csr(graph::make_path(3));
  BfsResult r = run_serial(g, 0);
  r.level[2] = -1;  // parent says reached, level says not
  EXPECT_FALSE(validate_bfs(g, 0, r).ok);
}

TEST(Validate, RejectsPrematureStop) {
  // Mark vertex 3 (and 4) unreached even though 2 is reached: edge
  // (2,3) then leaves the traversed region.
  const CsrGraph g = build_csr(graph::make_path(5));
  BfsResult r = run_serial(g, 0);
  r.parent[3] = graph::kNoVertex;
  r.level[3] = -1;
  r.parent[4] = graph::kNoVertex;
  r.level[4] = -1;
  r.reached = 3;
  EXPECT_FALSE(validate_bfs(g, 0, r).ok);
}

TEST(Validate, RejectsWrongReachedCount) {
  const CsrGraph g = build_csr(graph::make_path(3));
  BfsResult r = run_serial(g, 0);
  r.reached = 2;
  EXPECT_FALSE(validate_bfs(g, 0, r).ok);
}

TEST(Validate, AcceptsDisconnectedGraphResult) {
  const CsrGraph g = build_csr(graph::make_two_cliques(8));
  const BfsResult r = run_serial(g, 1);
  EXPECT_TRUE(validate_bfs(g, 1, r).ok);
}

TEST(Validate, ErrorMessageNamesOffendingVertex) {
  const CsrGraph g = build_csr(graph::make_path(5));
  BfsResult r = run_serial(g, 0);
  r.level[3] = 9;
  const ValidationReport rep = validate_bfs(g, 0, r);
  ASSERT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("3"), std::string::npos);
}

}  // namespace
}  // namespace bfsx::bfs
