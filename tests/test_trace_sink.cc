// Golden-file tests for the trace writers (obs/writers.h): every JSONL
// line must parse as a flat JSON object carrying the versioned schema,
// and the per-level counters must agree with the independently built
// core::LevelTrace for the same graph and root.
#include "obs/writers.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/adaptive_bfs.h"
#include "core/level_trace.h"
#include "graph/builder.h"
#include "graph/graph_stats.h"
#include "graph/rmat.h"
#include "sim/arch_config.h"

namespace bfsx::obs {
namespace {

graph::CsrGraph small_graph() {
  graph::RmatParams p;
  p.scale = 8;
  p.edgefactor = 16;
  p.seed = 7;
  return graph::build_csr(graph::generate_rmat(p));
}

sim::Device cpu_device() {
  return sim::Device{sim::parse_arch_spec("base=cpu,name=cpu")};
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Minimal field extraction from the flat one-line objects the writer
/// emits (values contain no braces or commas-in-strings to confuse it).
std::string json_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return {};
  std::size_t begin = at + needle.size();
  std::size_t end = line.find_first_of(",}", begin);
  std::string value = line.substr(begin, end - begin);
  if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
    value = value.substr(1, value.size() - 2);
  }
  return value;
}

std::int64_t json_int(const std::string& line, const std::string& key) {
  const std::string value = json_field(line, key);
  EXPECT_FALSE(value.empty()) << "missing field " << key << " in " << line;
  return value.empty() ? -1 : std::stoll(value);
}

/// Structural well-formedness a real parser would enforce: one flat
/// object per line, keys and string values quoted, braces balanced.
void expect_parses_as_flat_object(const std::string& line) {
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.front(), '{') << line;
  EXPECT_EQ(line.back(), '}') << line;
  EXPECT_EQ(line.find('{', 1), std::string::npos) << "nested: " << line;
  EXPECT_EQ(std::count(line.begin(), line.end(), '"') % 2, 0) << line;
}

TEST(TraceSink, JsonlGoldenAgainstLevelTrace) {
  const graph::CsrGraph g = small_graph();
  const graph::vid_t root = graph::sample_roots(g, 1, 3)[0];
  const core::LevelTrace golden = core::build_level_trace(g, root);

  std::ostringstream out;
  JsonlWriter sink(out);
  const core::CombinationRun run = core::run_combination(
      g, root, cpu_device(), core::HybridPolicy{14.0, 24.0}, &sink);

  const std::vector<std::string> lines = split_lines(out.str());
  ASSERT_EQ(lines.size(), run.levels.size() + 2);  // begin + levels + end

  for (const std::string& line : lines) {
    expect_parses_as_flat_object(line);
    EXPECT_EQ(json_field(line, "schema"), "bfsx.trace.v1") << line;
    EXPECT_FALSE(json_field(line, "event").empty()) << line;
    EXPECT_EQ(json_int(line, "run"), 0) << line;
  }

  EXPECT_EQ(json_field(lines.front(), "event"), "run_begin");
  EXPECT_EQ(json_field(lines.front(), "engine"), "hybrid");
  EXPECT_EQ(json_int(lines.front(), "root"), root);
  EXPECT_EQ(json_int(lines.front(), "vertices"), g.num_vertices());
  EXPECT_EQ(json_int(lines.front(), "edges"), g.num_edges());

  ASSERT_EQ(golden.levels.size(), run.levels.size());
  for (std::size_t i = 0; i < run.levels.size(); ++i) {
    const std::string& line = lines[i + 1];
    const core::TraceLevel& want = golden.levels[i];
    EXPECT_EQ(json_field(line, "event"), "level") << line;
    EXPECT_EQ(json_int(line, "level"), want.level);
    EXPECT_EQ(json_field(line, "device"), "cpu");
    EXPECT_EQ(json_int(line, "frontier_vertices"), want.frontier_vertices);
    EXPECT_EQ(json_int(line, "frontier_edges"), want.frontier_edges);
    EXPECT_EQ(json_int(line, "next_vertices"), want.next_vertices);
    const std::string dir = json_field(line, "direction");
    if (dir == "BU") {
      EXPECT_EQ(json_int(line, "bu_edges_hit"), want.bu_edges_hit);
      EXPECT_EQ(json_int(line, "bu_edges_miss"), want.bu_edges_miss);
    } else {
      EXPECT_EQ(dir, "TD") << line;
      EXPECT_EQ(json_int(line, "bu_edges_hit"), 0);
    }
  }

  const std::string& end = lines.back();
  EXPECT_EQ(json_field(end, "event"), "run_end");
  EXPECT_EQ(json_int(end, "reached"), run.result.reached);
  EXPECT_EQ(json_int(end, "depth"),
            static_cast<std::int64_t>(run.levels.size()));
  EXPECT_EQ(json_int(end, "direction_switches"), run.direction_switches);
  EXPECT_FALSE(json_field(end, "seconds").empty());
}

TEST(TraceSink, JsonlSeparatesConsecutiveRuns) {
  const graph::CsrGraph g = small_graph();
  const std::vector<graph::vid_t> roots = graph::sample_roots(g, 2, 3);

  std::ostringstream out;
  JsonlWriter sink(out);
  const sim::Device cpu = cpu_device();
  for (const graph::vid_t root : roots) {
    core::run_combination(g, root, cpu, core::HybridPolicy{14.0, 24.0},
                          &sink);
  }
  const std::vector<std::string> lines = split_lines(out.str());
  std::int64_t max_run = -1;
  for (const std::string& line : lines) {
    max_run = std::max(max_run, json_int(line, "run"));
  }
  EXPECT_EQ(max_run, 1);  // two runs: indices 0 and 1
}

TEST(TraceSink, CsvRowsHaveHeaderColumnCount) {
  const graph::CsrGraph g = small_graph();
  const graph::vid_t root = graph::sample_roots(g, 1, 3)[0];

  std::ostringstream out;
  CsvWriter sink(out);
  const core::CombinationRun run = core::run_combination(
      g, root, cpu_device(), core::HybridPolicy{14.0, 24.0}, &sink);

  const std::vector<std::string> lines = split_lines(out.str());
  ASSERT_EQ(lines.size(), run.levels.size() + 3);  // header, begin, lv, end
  const auto columns = [](const std::string& line) {
    return std::count(line.begin(), line.end(), ',') + 1;
  };
  EXPECT_NE(lines.front().find("schema,event,run"), std::string::npos);
  EXPECT_NE(lines.front().find("frontier_edges"), std::string::npos);
  for (const std::string& line : lines) {
    EXPECT_EQ(columns(line), columns(lines.front())) << line;
  }
  // Data rows all carry the schema tag in column one.
  for (std::size_t i = 1; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i].rfind("bfsx.trace.v1,", 0), 0u) << lines[i];
  }
}

TEST(TraceSink, FileConstructorRejectsUnwritablePath) {
  EXPECT_THROW(JsonlWriter("/nonexistent-dir/trace.jsonl"),
               std::runtime_error);
}

}  // namespace
}  // namespace bfsx::obs
