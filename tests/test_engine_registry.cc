// Tests for graph500::EngineRegistry: every engine family constructible
// by name from one place, helpful unknown-name errors, and — through a
// MemorySink attached at the single construction point — cross-engine
// agreement of the per-level work counters.
#include "graph500/engine_registry.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/builder.h"
#include "graph/graph_stats.h"
#include "graph/rmat.h"
#include "obs/sink.h"

namespace bfsx::graph500 {
namespace {

graph::CsrGraph small_graph() {
  graph::RmatParams p;
  p.scale = 8;
  p.edgefactor = 16;
  p.seed = 11;
  return graph::build_csr(graph::generate_rmat(p));
}

TEST(EngineRegistry, EveryBuiltinConstructsAndTraverses) {
  const EngineRegistry registry = EngineRegistry::with_builtin_engines();
  const graph::CsrGraph g = small_graph();
  const graph::vid_t root = graph::sample_roots(g, 1, 5)[0];

  const std::vector<std::string> names = registry.names();
  ASSERT_EQ(names.size(), 10u);
  for (const std::string& name : names) {
    const EngineConfig cfg;  // defaults suffice for every family
    const BfsEngine engine = registry.make_engine(name, cfg);
    const TimedBfs timed = engine(g, root);
    EXPECT_GT(timed.result.reached, 1) << name;
    EXPECT_GT(timed.seconds, 0.0) << name;
    EXPECT_EQ(timed.result.parent[static_cast<std::size_t>(root)], root)
        << name;
  }
}

TEST(EngineRegistry, MakeBatchEngineServesEveryEntry) {
  const EngineRegistry registry = EngineRegistry::with_builtin_engines();
  const graph::CsrGraph g = small_graph();
  const std::vector<graph::vid_t> batch = graph::sample_roots(g, 3, 5);
  // "msbfs" has a native batch factory; "hybrid" goes through the
  // one-root-at-a-time wrapper. Both must honour batch order.
  for (const char* name : {"msbfs", "hybrid"}) {
    const BatchBfsEngine engine =
        registry.make_batch_engine(name, EngineConfig{});
    const std::vector<TimedBfs> timed = engine(g, batch);
    ASSERT_EQ(timed.size(), batch.size()) << name;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_GT(timed[i].result.reached, 1) << name;
      EXPECT_EQ(timed[i]
                    .result.parent[static_cast<std::size_t>(batch[i])],
                batch[i])
          << name;
    }
  }
}

TEST(EngineRegistry, EntriesCarryDescriptionsAndDescribeListsThem) {
  const EngineRegistry registry = EngineRegistry::with_builtin_engines();
  const std::string usage = registry.describe();
  for (const auto& entry : registry.entries()) {
    EXPECT_FALSE(entry.description.empty()) << entry.name;
    EXPECT_NE(usage.find(entry.name), std::string::npos);
    EXPECT_NE(usage.find(entry.description), std::string::npos);
  }
}

TEST(EngineRegistry, UnknownNameListsEveryValidEngine) {
  const EngineRegistry registry = EngineRegistry::with_builtin_engines();
  try {
    (void)registry.make_engine("nosuch", EngineConfig{});
    FAIL() << "expected UnknownEngineError";
  } catch (const UnknownEngineError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'nosuch'"), std::string::npos);
    EXPECT_NE(what.find("valid engines:"), std::string::npos);
    for (const std::string& name : registry.names()) {
      EXPECT_NE(what.find(name), std::string::npos) << name;
    }
  }
}

TEST(EngineRegistry, TypoGetsDidYouMeanSuggestion) {
  const EngineRegistry registry = EngineRegistry::with_builtin_engines();
  try {
    (void)registry.make_engine("hybird", EngineConfig{});
    FAIL() << "expected UnknownEngineError";
  } catch (const UnknownEngineError& e) {
    EXPECT_NE(std::string(e.what()).find("did you mean 'hybrid'?"),
              std::string::npos)
        << e.what();
  }
}

TEST(EngineRegistry, RejectsDuplicateAndMalformedRegistrations) {
  EngineRegistry registry;
  const auto factory = [](const EngineConfig&) -> BfsEngine {
    return nullptr;
  };
  registry.register_engine({"x", "an engine", factory});
  EXPECT_THROW(registry.register_engine({"x", "again", factory}),
               std::invalid_argument);
  EXPECT_THROW(registry.register_engine({"", "no name", factory}),
               std::invalid_argument);
  EXPECT_THROW(registry.register_engine({"y", "no factory", nullptr}),
               std::invalid_argument);
}

TEST(EngineRegistry, ScenarioFactoriesCoverTheNativeFamily) {
  const EngineRegistry registry = EngineRegistry::with_builtin_engines();
  EXPECT_EQ(registry.scenario_names(),
            (std::vector<std::string>{"native-td", "native-bu",
                                      "native-hybrid"}));
}

TEST(EngineRegistry, ScenarioUnsupportedEngineNamesTheCapableOnes) {
  const EngineRegistry registry = EngineRegistry::with_builtin_engines();
  for (const char* name : {"msbfs", "hybrid", "dist"}) {
    try {
      (void)registry.make_scenario_engine(name, EngineConfig{});
      FAIL() << "expected UnknownEngineError for " << name;
    } catch (const UnknownEngineError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("does not support --scenario"), std::string::npos)
          << what;
      EXPECT_NE(what.find("native-hybrid"), std::string::npos) << what;
    }
  }
  // Unknown names keep the usual did-you-mean treatment.
  EXPECT_THROW((void)registry.make_scenario_engine("nosuch", EngineConfig{}),
               UnknownEngineError);
}

/// The per-level work counters (|V|cq, |E|cq, next) are properties of
/// the level sets, which every correct engine shares — so the traces of
/// the native, simulated, cross-architecture, and distributed engines
/// must agree level by level once each has a sink attached through the
/// registry's one construction point.
TEST(EngineRegistry, CrossEngineLevelCountersAgree) {
  const EngineRegistry registry = EngineRegistry::with_builtin_engines();
  const graph::CsrGraph g = small_graph();
  const graph::vid_t root = graph::sample_roots(g, 1, 5)[0];

  const std::vector<std::string> engines = {
      "td", "bu", "hybrid", "cross", "dist", "native-td", "native-hybrid"};
  std::vector<std::vector<obs::LevelEvent>> traces;
  for (const std::string& name : engines) {
    obs::MemorySink sink;
    EngineConfig cfg;
    cfg.sink = &sink;
    (void)registry.make_engine(name, cfg)(g, root);
    ASSERT_EQ(sink.run_begins.size(), 1u) << name;
    ASSERT_EQ(sink.run_ends.size(), 1u) << name;
    EXPECT_EQ(sink.run_begins[0].root, root) << name;
    traces.push_back(sink.levels_of_run(0));
    ASSERT_FALSE(traces.back().empty()) << name;
  }

  const std::vector<obs::LevelEvent>& golden = traces.front();
  for (std::size_t e = 1; e < traces.size(); ++e) {
    ASSERT_EQ(traces[e].size(), golden.size()) << engines[e];
    for (std::size_t lvl = 0; lvl < golden.size(); ++lvl) {
      EXPECT_EQ(traces[e][lvl].level, golden[lvl].level) << engines[e];
      EXPECT_EQ(traces[e][lvl].frontier_vertices,
                golden[lvl].frontier_vertices)
          << engines[e] << " level " << lvl;
      EXPECT_EQ(traces[e][lvl].frontier_edges, golden[lvl].frontier_edges)
          << engines[e] << " level " << lvl;
      EXPECT_EQ(traces[e][lvl].next_vertices, golden[lvl].next_vertices)
          << engines[e] << " level " << lvl;
    }
  }
}

/// The cross-architecture engine reports its frontier shipment as an
/// explicit handoff event carrying the wire time.
TEST(EngineRegistry, CrossEngineEmitsHandoffEvent) {
  const EngineRegistry registry = EngineRegistry::with_builtin_engines();
  const graph::CsrGraph g = small_graph();
  const graph::vid_t root = graph::sample_roots(g, 1, 5)[0];

  obs::MemorySink sink;
  EngineConfig cfg;
  cfg.sink = &sink;
  (void)registry.make_engine("cross", cfg)(g, root);

  std::size_t handoffs = 0;
  for (const auto& [run, event] : sink.levels) {
    if (event.kind != obs::LevelEvent::Kind::kHandoff) continue;
    ++handoffs;
    EXPECT_GE(event.comm_seconds, 0.0);
    EXPECT_GT(event.frontier_vertices, 0);
  }
  EXPECT_EQ(handoffs, 1u);
}

/// The dist engine's superstep events carry the BSP-only columns.
TEST(EngineRegistry, DistEngineReportsCommAndBalance) {
  const EngineRegistry registry = EngineRegistry::with_builtin_engines();
  const graph::CsrGraph g = small_graph();
  const graph::vid_t root = graph::sample_roots(g, 1, 5)[0];

  obs::MemorySink sink;
  EngineConfig cfg;
  cfg.sink = &sink;  // null cluster: the factory builds a 2-device one
  (void)registry.make_engine("dist", cfg)(g, root);

  const std::vector<obs::LevelEvent> levels = sink.levels_of_run(0);
  ASSERT_FALSE(levels.empty());
  for (const obs::LevelEvent& lvl : levels) {
    EXPECT_GT(lvl.comm_seconds, 0.0);  // every superstep pays the fabric
    EXPECT_GE(lvl.balance, 1.0);
    EXPECT_EQ(lvl.device, "cluster[2]");
  }
}

}  // namespace
}  // namespace bfsx::graph500
