// Property-based tests on the switching machinery: replay/execute
// equivalence and cost-model invariants over random policies and
// random graphs.
#include <gtest/gtest.h>

#include "core/adaptive_bfs.h"
#include "core/cross_arch_bfs.h"
#include "core/level_trace.h"
#include "core/tuner.h"
#include "graph/builder.h"
#include "graph/graph_stats.h"
#include "graph/prng.h"
#include "graph/rmat.h"

namespace bfsx::core {
namespace {

struct TraceFixture {
  graph::CsrGraph g;
  graph::vid_t root;
  LevelTrace trace;

  explicit TraceFixture(std::uint64_t seed) {
    graph::RmatParams p;
    p.scale = 11;
    p.seed = seed;
    g = graph::build_csr(graph::generate_rmat(p));
    root = graph::sample_roots(g, 1, seed)[0];
    trace = build_level_trace(g, root);
  }
};

class PolicyProperty : public ::testing::TestWithParam<std::uint64_t> {};

// Property: for random policies, replaying the trace equals executing
// the combination, on every architecture.
TEST_P(PolicyProperty, ReplayEqualsExecutionForRandomPolicies) {
  TraceFixture f(GetParam());
  graph::Xoshiro256ss rng(GetParam() * 7919 + 1);
  const sim::Device devices[] = {sim::Device{sim::make_sandy_bridge_cpu()},
                                 sim::Device{sim::make_kepler_gpu()},
                                 sim::Device{sim::make_knights_corner_mic()}};
  for (int i = 0; i < 8; ++i) {
    const HybridPolicy p{1.0 + 299.0 * rng.next_double(),
                         1.0 + 299.0 * rng.next_double()};
    const auto& dev = devices[i % 3];
    const double replayed = replay_single(f.trace, dev.spec(), p);
    const double executed = run_combination(f.g, f.root, dev, p).seconds;
    EXPECT_NEAR(replayed, executed, 1e-12 + 1e-9 * executed)
        << dev.spec().name << " M=" << p.m << " N=" << p.n;
  }
}

// Property: the exhaustive best over a grid is no slower than any pure
// strategy expressible inside that grid's span.
TEST_P(PolicyProperty, ExhaustiveBestDominatesGridMembers) {
  TraceFixture f(GetParam());
  const sim::ArchSpec arch = sim::make_kepler_gpu();
  const SwitchCandidates cands = SwitchCandidates::coarse_grid();
  const CandidateSweep sweep = sweep_single(f.trace, arch, cands);
  const TunedPolicy best = pick_best(sweep, cands);
  graph::Xoshiro256ss rng(GetParam() + 3);
  for (int i = 0; i < 16; ++i) {
    const std::size_t idx = static_cast<std::size_t>(
        rng.next_bounded(static_cast<std::uint64_t>(cands.size())));
    EXPECT_LE(best.seconds, sweep.seconds[idx] + 1e-15);
  }
}

// Property: making the interconnect slower never makes the replayed
// cross-architecture plan faster (monotonicity of the transfer term).
TEST_P(PolicyProperty, CrossCostMonotoneInLinkLatency) {
  TraceFixture f(GetParam());
  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  const sim::ArchSpec gpu = sim::make_kepler_gpu();
  const HybridPolicy handoff{20, 30};
  const HybridPolicy inner{14, 24};
  double prev = -1.0;
  for (double latency_us : {0.0, 10.0, 1000.0, 100000.0}) {
    sim::InterconnectSpec link;
    link.latency_us = latency_us;
    const double t = replay_cross(f.trace, cpu, gpu, link, handoff, inner);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

// Property: the single-architecture combination under the grid's best
// policy is never slower than either pure direction (the grid contains
// near-pure policies at its corners).
TEST_P(PolicyProperty, TunedCombinationDominatesPureDirections) {
  TraceFixture f(GetParam());
  for (const sim::ArchSpec& arch :
       {sim::make_sandy_bridge_cpu(), sim::make_kepler_gpu()}) {
    const CandidateSweep sweep =
        sweep_single(f.trace, arch, SwitchCandidates::paper_grid());
    const double best = sweep.best_seconds();
    const double td = replay_pure(f.trace, arch, bfs::Direction::kTopDown);
    const double bu = replay_pure(f.trace, arch, bfs::Direction::kBottomUp);
    // The grid's M=1 row approximates pure top-down but the N condition
    // still binds; allow a small tolerance above the true pure runs.
    EXPECT_LE(best, td * 1.05 + 1e-9) << arch.name;
    EXPECT_LE(best, bu * 1.05 + 1e-9) << arch.name;
  }
}

// Property: direction decisions depend only on the thresholds, so
// scaling M and N together past every frontier ratio saturates to
// all-bottom-up (and the replay cost converges).
TEST_P(PolicyProperty, PolicySaturatesToBottomUp) {
  TraceFixture f(GetParam());
  const sim::ArchSpec arch = sim::make_sandy_bridge_cpu();
  const double huge1 = replay_single(f.trace, arch, {1e15, 1e15});
  const double huge2 = replay_single(f.trace, arch, {1e16, 1e16});
  const double pure_bu = replay_pure(f.trace, arch, bfs::Direction::kBottomUp);
  EXPECT_DOUBLE_EQ(huge1, huge2);
  EXPECT_DOUBLE_EQ(huge1, pure_bu);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace bfsx::core
