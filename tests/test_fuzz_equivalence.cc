// Fuzz-style differential tests: randomised inputs, multiple
// independent implementations, exact agreement required.
#include <gtest/gtest.h>

#include <map>
#include <set>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "bfs/boolmap.h"
#include "bfs/drivers.h"
#include "bfs/spmv.h"
#include "bfs/validate.h"
#include "graph/bitmap.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/prng.h"

namespace bfsx {
namespace {

using graph::Bitmap;
using graph::build_csr;
using graph::CsrGraph;
using graph::EdgeList;
using graph::vid_t;

class FuzzSeed : public ::testing::TestWithParam<std::uint64_t> {};

// The CSR builder against a naive adjacency-set reference.
TEST_P(FuzzSeed, BuilderMatchesAdjacencySetReference) {
  graph::Xoshiro256ss rng(GetParam());
  const vid_t n = 2 + static_cast<vid_t>(rng.next_bounded(60));
  const std::size_t m = rng.next_bounded(300);
  EdgeList el;
  el.num_vertices = n;
  std::map<vid_t, std::set<vid_t>> ref;
  for (std::size_t i = 0; i < m; ++i) {
    const auto u = static_cast<vid_t>(rng.next_bounded(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<vid_t>(rng.next_bounded(static_cast<std::uint64_t>(n)));
    el.add(u, v);
    if (u != v) {  // builder drops self loops by default
      ref[u].insert(v);
      ref[v].insert(u);
    }
  }
  const CsrGraph g = build_csr(std::move(el));
  ASSERT_EQ(g.num_vertices(), n);
  for (vid_t v = 0; v < n; ++v) {
    const auto nbrs = g.out_neighbors(v);
    const std::set<vid_t> got(nbrs.begin(), nbrs.end());
    const auto it = ref.find(v);
    const std::set<vid_t> want = it == ref.end() ? std::set<vid_t>{} : it->second;
    EXPECT_EQ(got, want) << "vertex " << v << " seed " << GetParam();
  }
}

// Bitmap vs std::set as a bit-level reference, including atomic ops.
TEST_P(FuzzSeed, BitmapMatchesSetReference) {
  graph::Xoshiro256ss rng(GetParam() * 31 + 7);
  const std::size_t size = 1 + rng.next_bounded(500);
  Bitmap bm(size);
  std::set<std::size_t> ref;
  for (int op = 0; op < 400; ++op) {
    const std::size_t pos = rng.next_bounded(size);
    switch (rng.next_bounded(4)) {
      case 0:
        bm.set(pos);
        ref.insert(pos);
        break;
      case 1:
        bm.set_atomic(pos);
        ref.insert(pos);
        break;
      case 2:
        bm.clear(pos);
        ref.erase(pos);
        break;
      default: {
        const bool claimed = bm.test_and_set_atomic(pos);
        EXPECT_EQ(claimed, ref.find(pos) == ref.end());
        ref.insert(pos);
        break;
      }
    }
    EXPECT_EQ(bm.test(pos), ref.count(pos) == 1);
  }
  EXPECT_EQ(bm.count(), ref.size());
  std::set<std::size_t> iterated;
  bm.for_each_set([&iterated](vid_t v) {
    iterated.insert(static_cast<std::size_t>(v));
  });
  EXPECT_EQ(iterated, ref);
}

// Five BFS engines must agree on random graphs, random roots.
TEST_P(FuzzSeed, FiveEnginesAgreeOnRandomGraphs) {
  graph::Xoshiro256ss rng(GetParam() * 97 + 13);
  const vid_t n = 10 + static_cast<vid_t>(rng.next_bounded(500));
  const auto m = static_cast<graph::eid_t>(rng.next_bounded(3000));
  const CsrGraph g =
      build_csr(graph::make_erdos_renyi(n, m, GetParam() + 1000));
  // Find any non-isolated root (skip the graph if none).
  vid_t root = graph::kNoVertex;
  for (vid_t v = 0; v < n; ++v) {
    if (g.out_degree(v) > 0) {
      root = v;
      break;
    }
  }
  if (root == graph::kNoVertex) GTEST_SKIP() << "all-isolated graph";

  const bfs::BfsResult serial = bfs::run_serial(g, root);
  EXPECT_TRUE(bfs::same_levels(serial, bfs::run_top_down(g, root)));
  EXPECT_TRUE(bfs::same_levels(serial, bfs::run_bottom_up(g, root)));
  EXPECT_TRUE(bfs::same_levels(serial, bfs::run_bottom_up_boolmap(g, root)));
  EXPECT_TRUE(bfs::same_levels(serial, bfs::run_spmv_bfs(g, root)));
}

// The unvisited-list bottom-up must reproduce, level by level, the
// counters and the parent map the top-down expansion of the same graph
// yields: |V|cq, |E|cq, and discoveries per level are direction-
// independent facts about the BFS tree.
TEST_P(FuzzSeed, BottomUpCountersAndParentsMatchTopDown) {
  graph::Xoshiro256ss rng(GetParam() * 131 + 5);
  const vid_t n = 10 + static_cast<vid_t>(rng.next_bounded(400));
  const auto m = static_cast<graph::eid_t>(rng.next_bounded(2500));
  const CsrGraph g =
      build_csr(graph::make_erdos_renyi(n, m, GetParam() + 4000));
  vid_t root = graph::kNoVertex;
  for (vid_t v = 0; v < n; ++v) {
    if (g.out_degree(v) > 0) {
      root = v;
      break;
    }
  }
  if (root == graph::kNoVertex) GTEST_SKIP() << "all-isolated graph";

  bfs::TraversalLog td_log;
  bfs::TraversalLog bu_log;
  const bfs::BfsResult td = bfs::run_top_down(g, root, &td_log);
  const bfs::BfsResult bu = bfs::run_bottom_up(g, root, &bu_log);

  EXPECT_TRUE(bfs::same_levels(td, bu));
  EXPECT_EQ(td.reached, bu.reached);
  EXPECT_EQ(td.edges_in_component, bu.edges_in_component);
  // Bottom-up may walk one empty trailing level before noticing the
  // frontier died; every level top-down saw must agree exactly.
  ASSERT_GE(bu_log.levels.size(), td_log.levels.size());
  for (std::size_t i = 0; i < td_log.levels.size(); ++i) {
    EXPECT_EQ(td_log.levels[i].frontier_vertices,
              bu_log.levels[i].frontier_vertices) << "level " << i;
    EXPECT_EQ(td_log.levels[i].frontier_edges,
              bu_log.levels[i].frontier_edges) << "level " << i;
    EXPECT_EQ(td_log.levels[i].next_vertices,
              bu_log.levels[i].next_vertices) << "level " << i;
  }
  // Both parent maps must be valid BFS trees: parent one level up.
  for (const bfs::BfsResult* r : {&td, &bu}) {
    for (vid_t v = 0; v < n; ++v) {
      const vid_t p = r->parent[static_cast<std::size_t>(v)];
      if (v == root || p == graph::kNoVertex) continue;
      EXPECT_EQ(r->level[static_cast<std::size_t>(v)],
                r->level[static_cast<std::size_t>(p)] + 1);
      EXPECT_TRUE(g.has_edge(p, v));
    }
  }
}

#ifdef _OPENMP
// The parallel CSR builder must be a pure function of the edge list —
// same arrays out of 1 and 4 workers on random inputs.
TEST_P(FuzzSeed, BuilderIsThreadCountInvariant) {
  graph::Xoshiro256ss rng(GetParam() * 257 + 11);
  const vid_t n = 2 + static_cast<vid_t>(rng.next_bounded(2000));
  EdgeList el;
  el.num_vertices = n;
  // Past the parallel threshold, with duplicates and self loops mixed in.
  for (int i = 0; i < 40000; ++i) {
    el.add(static_cast<vid_t>(rng.next_bounded(static_cast<std::uint64_t>(n))),
           static_cast<vid_t>(rng.next_bounded(static_cast<std::uint64_t>(n))));
  }
  const int saved = omp_get_max_threads();
  omp_set_num_threads(1);
  const CsrGraph serial = build_csr(el);
  omp_set_num_threads(4);
  const CsrGraph parallel = build_csr(std::move(el));
  omp_set_num_threads(saved);
  EXPECT_EQ(serial.out_offsets(), parallel.out_offsets());
  EXPECT_EQ(serial.out_targets(), parallel.out_targets());
}
#endif  // _OPENMP

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeed,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace bfsx
