// Tests for the perf_event_open wrapper (obs/perf_counters.h). The
// load-bearing contract is graceful degradation: containers routinely
// deny the syscall, so construction must never throw and an unavailable
// group must yield invalid all-zero samples — in every environment this
// suite runs in, available() may be either true or false, and both
// paths must behave.
#include "obs/perf_counters.h"

#include <gtest/gtest.h>

#include <cstdint>

namespace bfsx::obs {
namespace {

TEST(PerfCounters, ConstructionNeverThrows) {
  EXPECT_NO_THROW({
    PerfCounters counters;
    (void)counters.available();
  });
}

TEST(PerfCounters, StopWithoutStartIsSafe) {
  PerfCounters counters;
  const PerfSample s = counters.stop();
  if (!counters.available()) {
    EXPECT_FALSE(s.valid);
  }
}

TEST(PerfCounters, UnavailableDegradesToZeroSamples) {
  PerfCounters counters;
  counters.start();
  // Burn a few instructions so an *available* PMU has something to
  // count; an unavailable one must still return all zeros.
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink += static_cast<std::uint64_t>(i);
  const PerfSample s = counters.stop();
  if (counters.available()) {
    EXPECT_TRUE(s.valid);
    EXPECT_GT(s.instructions, 0u);
    EXPECT_GE(s.ipc(), 0.0);
  } else {
    EXPECT_FALSE(s.valid);
    EXPECT_EQ(s.cycles, 0u);
    EXPECT_EQ(s.instructions, 0u);
    EXPECT_EQ(s.cache_references, 0u);
    EXPECT_EQ(s.cache_misses, 0u);
    EXPECT_EQ(s.branch_misses, 0u);
    EXPECT_EQ(s.ipc(), 0.0);
    EXPECT_EQ(s.cache_miss_rate(), 0.0);
  }
}

TEST(PerfCounters, RepeatedStartStopCyclesAreIndependent) {
  PerfCounters counters;
  for (int round = 0; round < 3; ++round) {
    counters.start();
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 1000; ++i) sink += static_cast<std::uint64_t>(i);
    const PerfSample s = counters.stop();
    EXPECT_EQ(s.valid, counters.available()) << round;
  }
}

TEST(PerfSample, DerivedRatiosGateOnValidity) {
  PerfSample s;  // default: invalid, all zero
  EXPECT_EQ(s.ipc(), 0.0);
  EXPECT_EQ(s.cache_miss_rate(), 0.0);
  s.valid = true;
  s.cycles = 100;
  s.instructions = 250;
  s.cache_references = 1000;
  s.cache_misses = 50;
  EXPECT_DOUBLE_EQ(s.ipc(), 2.5);
  EXPECT_DOUBLE_EQ(s.cache_miss_rate(), 0.05);
  // Invalid samples must not divide, even with nonzero fields.
  s.valid = false;
  EXPECT_EQ(s.ipc(), 0.0);
  EXPECT_EQ(s.cache_miss_rate(), 0.0);
}

}  // namespace
}  // namespace bfsx::obs
