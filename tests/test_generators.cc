// Unit tests for the deterministic synthetic generators.
#include "graph/generators.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/builder.h"

namespace bfsx::graph {
namespace {

TEST(Generators, PathHasChainDegrees) {
  const CsrGraph g = build_csr(make_path(5));
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_EQ(g.num_edges(), 8);  // 4 undirected edges
  EXPECT_EQ(g.out_degree(0), 1);
  EXPECT_EQ(g.out_degree(2), 2);
  EXPECT_EQ(g.out_degree(4), 1);
}

TEST(Generators, SingleVertexPath) {
  const CsrGraph g = build_csr(make_path(1));
  EXPECT_EQ(g.num_vertices(), 1);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(Generators, CycleIsTwoRegular) {
  const CsrGraph g = build_csr(make_cycle(6));
  for (vid_t v = 0; v < 6; ++v) EXPECT_EQ(g.out_degree(v), 2);
}

TEST(Generators, StarHubDegree) {
  const CsrGraph g = build_csr(make_star(10));
  EXPECT_EQ(g.out_degree(0), 9);
  for (vid_t v = 1; v < 10; ++v) EXPECT_EQ(g.out_degree(v), 1);
}

TEST(Generators, CompleteGraphDegrees) {
  const CsrGraph g = build_csr(make_complete(7));
  for (vid_t v = 0; v < 7; ++v) EXPECT_EQ(g.out_degree(v), 6);
  EXPECT_EQ(g.num_edges(), 42);
}

TEST(Generators, GridCornerAndCenterDegrees) {
  const CsrGraph g = build_csr(make_grid(3, 4));
  EXPECT_EQ(g.num_vertices(), 12);
  EXPECT_EQ(g.out_degree(0), 2);       // corner
  EXPECT_EQ(g.out_degree(5), 4);       // interior (row 1, col 1)
  EXPECT_EQ(g.out_degree(3), 2);       // corner (row 0, col 3)
}

TEST(Generators, BinaryTreeParentStructure) {
  const CsrGraph g = build_csr(make_binary_tree(7));
  EXPECT_EQ(g.num_edges(), 12);  // 6 undirected edges
  EXPECT_EQ(g.out_degree(0), 2);
  EXPECT_EQ(g.out_degree(1), 3);  // parent + two children
  EXPECT_EQ(g.out_degree(6), 1);  // leaf
}

TEST(Generators, TwoCliquesAreDisconnected) {
  const CsrGraph g = build_csr(make_two_cliques(8));
  for (vid_t u = 0; u < 4; ++u) {
    for (vid_t v = 4; v < 8; ++v) EXPECT_FALSE(g.has_edge(u, v));
  }
  EXPECT_EQ(g.out_degree(0), 3);
}

TEST(Generators, TwoCliquesRejectsOdd) {
  EXPECT_THROW(make_two_cliques(7), std::invalid_argument);
}

TEST(Generators, ErdosRenyiIsDeterministic) {
  const EdgeList a = make_erdos_renyi(100, 500, 9);
  const EdgeList b = make_erdos_renyi(100, 500, 9);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_EQ(a.num_edges(), 500);
}

TEST(Generators, ErdosRenyiSeedsDiffer) {
  const EdgeList a = make_erdos_renyi(100, 500, 1);
  const EdgeList b = make_erdos_renyi(100, 500, 2);
  EXPECT_NE(a.edges, b.edges);
}

TEST(Generators, LollipopShape) {
  const CsrGraph g = build_csr(make_lollipop(5, 3));
  EXPECT_EQ(g.num_vertices(), 8);
  EXPECT_EQ(g.out_degree(0), 4);   // clique interior
  EXPECT_EQ(g.out_degree(4), 5);   // attachment vertex: clique + tail
  EXPECT_EQ(g.out_degree(7), 1);   // tail end
}

TEST(Generators, RejectNonPositiveSizes) {
  EXPECT_THROW(make_path(0), std::invalid_argument);
  EXPECT_THROW(make_star(-1), std::invalid_argument);
  EXPECT_THROW(make_grid(0, 5), std::invalid_argument);
}

}  // namespace
}  // namespace bfsx::graph
