// Unit and consistency tests for LevelTrace and policy replay — the
// correctness core of the exhaustive-search oracle.
#include "core/level_trace.h"

#include <gtest/gtest.h>

#include "core/adaptive_bfs.h"
#include "core/cross_arch_bfs.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "graph/rmat.h"

namespace bfsx::core {
namespace {

using graph::build_csr;

graph::CsrGraph rmat_graph(int scale = 12) {
  graph::RmatParams p;
  p.scale = scale;
  return build_csr(graph::generate_rmat(p));
}

TEST(LevelTrace, RecordsExactFrontierShapeOnPath) {
  const graph::CsrGraph g = build_csr(graph::make_path(5));
  const LevelTrace t = build_level_trace(g, 0);
  ASSERT_EQ(t.depth(), 5);  // levels 0..4 expanded (level 4 finds nothing)
  for (const TraceLevel& lvl : t.levels) {
    EXPECT_EQ(lvl.frontier_vertices, 1);
  }
  EXPECT_EQ(t.levels[0].next_vertices, 1);
  EXPECT_EQ(t.levels[4].next_vertices, 0);
}

TEST(LevelTrace, TotalsMatchGraph) {
  const graph::CsrGraph g = rmat_graph();
  const auto roots = graph::sample_roots(g, 1, 9);
  const LevelTrace t = build_level_trace(g, roots[0]);
  EXPECT_EQ(t.num_vertices, g.num_vertices());
  EXPECT_EQ(t.num_edges, g.num_edges());
  EXPECT_GE(t.depth(), 3);
}

TEST(LevelTrace, NextVerticesChainIntoFrontiers) {
  const graph::CsrGraph g = rmat_graph();
  const auto roots = graph::sample_roots(g, 1, 9);
  const LevelTrace t = build_level_trace(g, roots[0]);
  for (std::size_t i = 1; i < t.levels.size(); ++i) {
    EXPECT_EQ(t.levels[i].frontier_vertices, t.levels[i - 1].next_vertices);
  }
}

// The heart of the oracle: replaying a policy against the trace must
// price exactly what executing that policy costs.
TEST(LevelTrace, ReplaySingleMatchesExecutedCombination) {
  const graph::CsrGraph g = rmat_graph();
  const auto roots = graph::sample_roots(g, 2, 9);
  const sim::Device cpu{sim::make_sandy_bridge_cpu()};
  const sim::Device gpu{sim::make_kepler_gpu()};
  for (graph::vid_t root : roots) {
    const LevelTrace t = build_level_trace(g, root);
    for (const HybridPolicy& p :
         {HybridPolicy{2, 4}, HybridPolicy{14, 24}, HybridPolicy{100, 50}}) {
      const double replayed_cpu = replay_single(t, cpu.spec(), p);
      const CombinationRun run_cpu = run_combination(g, root, cpu, p);
      EXPECT_NEAR(replayed_cpu, run_cpu.seconds, 1e-12 + 1e-9 * run_cpu.seconds)
          << "CPU policy M=" << p.m << " N=" << p.n;

      const double replayed_gpu = replay_single(t, gpu.spec(), p);
      const CombinationRun run_gpu = run_combination(g, root, gpu, p);
      EXPECT_NEAR(replayed_gpu, run_gpu.seconds, 1e-12 + 1e-9 * run_gpu.seconds);
    }
  }
}

TEST(LevelTrace, ReplayCrossMatchesExecutedCrossArch) {
  const graph::CsrGraph g = rmat_graph();
  const auto roots = graph::sample_roots(g, 2, 5);
  const sim::Device cpu{sim::make_sandy_bridge_cpu()};
  const sim::Device gpu{sim::make_kepler_gpu()};
  const sim::InterconnectSpec link;
  for (graph::vid_t root : roots) {
    const LevelTrace t = build_level_trace(g, root);
    const HybridPolicy handoff{20, 30};
    const HybridPolicy inner{5, 200};
    const double replayed =
        replay_cross(t, cpu.spec(), gpu.spec(), link, handoff, inner);
    const CombinationRun run =
        run_cross_arch(g, root, cpu, gpu, link, handoff, inner);
    EXPECT_NEAR(replayed, run.seconds, 1e-12 + 1e-9 * run.seconds);
  }
}

TEST(LevelTrace, ReplayPureMatchesPureRuns) {
  const graph::CsrGraph g = rmat_graph();
  const auto roots = graph::sample_roots(g, 1, 3);
  const sim::Device mic{sim::make_knights_corner_mic()};
  const LevelTrace t = build_level_trace(g, roots[0]);
  const CombinationRun td =
      run_pure(g, roots[0], mic, bfs::Direction::kTopDown);
  EXPECT_NEAR(replay_pure(t, mic.spec(), bfs::Direction::kTopDown), td.seconds,
              1e-12 + 1e-9 * td.seconds);
  const CombinationRun bu =
      run_pure(g, roots[0], mic, bfs::Direction::kBottomUp);
  EXPECT_NEAR(replay_pure(t, mic.spec(), bfs::Direction::kBottomUp),
              bu.seconds, 1e-12 + 1e-9 * bu.seconds);
}

TEST(LevelTrace, CrossReplayChargesHandoffOnce) {
  const graph::CsrGraph g = rmat_graph();
  const auto roots = graph::sample_roots(g, 1, 3);
  const LevelTrace t = build_level_trace(g, roots[0]);
  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  const sim::ArchSpec gpu = sim::make_kepler_gpu();
  sim::InterconnectSpec slow;
  slow.latency_us = 1e6;  // one full second per transfer
  sim::InterconnectSpec fast;
  fast.latency_us = 0;
  fast.bandwidth_gbps = 1e9;
  const HybridPolicy handoff{20, 30};
  const HybridPolicy inner{5, 200};
  const double with_slow = replay_cross(t, cpu, gpu, slow, handoff, inner);
  const double with_fast = replay_cross(t, cpu, gpu, fast, handoff, inner);
  // Exactly one handoff: the difference is one transfer's cost.
  EXPECT_NEAR(with_slow - with_fast,
              sim::transfer_seconds(slow, sim::handoff_bytes(g.num_vertices())),
              1e-9);
}

}  // namespace
}  // namespace bfsx::core
