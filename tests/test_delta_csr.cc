// Tests for graph::DeltaCsr (graph/delta_csr.h): the incremental epoch
// overlay behind serve's delta publishes. The load-bearing contract is
// bit-equality — every templated kernel run over a delta epoch must
// produce exactly the traversal the fully rebuilt CSR would have
// produced (levels, parents under one thread, and the per-level
// |V|cq / |E|cq / scanned counters), including after removals, chained
// batches, vertex growth, and compaction.
#include "graph/delta_csr.h"

#include <gtest/gtest.h>

#include <omp.h>

#include <algorithm>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "bfs/drivers.h"
#include "bfs/msbfs.h"
#include "bfs/validate.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "graph/rmat.h"

namespace bfsx::graph {
namespace {

std::shared_ptr<const CsrGraph> rmat10_base() {
  RmatParams p;
  p.scale = 10;
  p.edgefactor = 8;
  p.seed = 19;
  return std::make_shared<const CsrGraph>(build_csr(generate_rmat(p)));
}

/// Oracle for the symmetric case: the undirected edge set as canonical
/// (min, max) pairs, mutated exactly as the batch semantics promise.
using PairSet = std::set<std::pair<vid_t, vid_t>>;

PairSet undirected_pairs(const CsrGraph& g) {
  PairSet pairs;
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    for (const vid_t w : g.out_neighbors(u)) {
      pairs.emplace(std::min(u, w), std::max(u, w));
    }
  }
  return pairs;
}

void apply_to_oracle(PairSet& pairs, std::span<const Edge> inserts,
                     std::span<const Edge> removes) {
  for (const Edge& e : inserts) {
    if (e.src == e.dst) continue;  // remove_self_loops
    pairs.emplace(std::min(e.src, e.dst), std::max(e.src, e.dst));
  }
  for (const Edge& e : removes) {
    pairs.erase({std::min(e.src, e.dst), std::max(e.src, e.dst)});
  }
}

CsrGraph rebuild_from_oracle(const PairSet& pairs, vid_t num_vertices) {
  EdgeList el;
  el.num_vertices = num_vertices;
  for (const auto& [u, v] : pairs) el.add(u, v);
  return build_csr(std::move(el));  // default opts symmetrize + sort + dedup
}

void expect_rows_equal(const DeltaCsr& d, const CsrGraph& flat) {
  ASSERT_EQ(d.num_vertices(), flat.num_vertices());
  ASSERT_EQ(d.num_edges(), flat.num_edges());
  ASSERT_EQ(d.is_symmetric(), flat.is_symmetric());
  for (vid_t v = 0; v < flat.num_vertices(); ++v) {
    const std::span<const vid_t> a = d.out_row(v);
    const std::span<const vid_t> b = flat.out_neighbors(v);
    ASSERT_EQ(a.size(), b.size()) << "row " << v;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "row " << v << " slot " << i;
    }
  }
}

TEST(DeltaCsr, EffectiveRowsMatchFullRebuild) {
  const auto base = rmat10_base();
  PairSet oracle = undirected_pairs(*base);

  const std::vector<Edge> inserts = {{3, 900}, {3, 901}, {17, 17},
                                     {250, 251}, {250, 251}};
  const std::vector<Edge> removes = {{0, 1}};  // may or may not exist
  apply_to_oracle(oracle, inserts, removes);

  const DeltaCsr d = DeltaCsr::apply(base, nullptr, inserts, removes);
  expect_rows_equal(d, rebuild_from_oracle(oracle, base->num_vertices()));

  EXPECT_TRUE(d.has_edge(3, 900));
  EXPECT_TRUE(d.has_edge(900, 3));  // symmetrized
  EXPECT_FALSE(d.has_edge(17, 17));
  EXPECT_FALSE(d.has_edge(0, 1));
  EXPECT_FALSE(d.has_edge(1, 0));
}

TEST(DeltaCsr, PatchesOnlyTouchedRowsAndSharesBaseStorage) {
  const auto base =
      std::make_shared<const CsrGraph>(build_csr(make_grid(8, 8)));
  const std::vector<Edge> inserts = {{0, 63}};
  const DeltaCsr d = DeltaCsr::apply(base, nullptr, inserts, {});

  EXPECT_EQ(d.patched_rows(), 2);  // rows 0 and 63, via symmetrize
  EXPECT_TRUE(d.row_is_patched(0));
  EXPECT_TRUE(d.row_is_patched(63));
  EXPECT_FALSE(d.row_is_patched(1));
  EXPECT_DOUBLE_EQ(d.patched_fraction(), 2.0 / 64.0);

  // An untouched row is the base's span verbatim — same storage, not a
  // copy; that sharing is the whole point of the overlay.
  EXPECT_EQ(d.out_row(1).data(), base->out_neighbors(1).data());
  EXPECT_EQ(d.out_row(1).size(), base->out_neighbors(1).size());
  EXPECT_EQ(&d.base(), base.get());
  EXPECT_EQ(d.base_ptr().get(), base.get());
}

TEST(DeltaCsr, NoOpBatchPatchesNothing) {
  const auto base =
      std::make_shared<const CsrGraph>(build_csr(make_grid(4, 4)));
  // Duplicate insert of an existing edge, removal of an absent edge,
  // and a self-loop: all publish-time no-ops; the overlay must not
  // burn patch slots or change the edge count for any of them.
  ASSERT_TRUE(base->out_degree(0) > 0);
  const vid_t w = base->out_neighbors(0)[0];
  const std::vector<Edge> inserts = {{0, w}, {7, 7}};
  const std::vector<Edge> removes = {{0, 15}};
  ASSERT_FALSE(std::ranges::binary_search(base->out_neighbors(0), vid_t{15}));

  const DeltaCsr d = DeltaCsr::apply(base, nullptr, inserts, removes);
  EXPECT_EQ(d.patched_rows(), 0);
  EXPECT_EQ(d.num_edges(), base->num_edges());
  EXPECT_EQ(d.num_vertices(), base->num_vertices());
}

TEST(DeltaCsr, VertexGrowthOnInsert) {
  const auto base =
      std::make_shared<const CsrGraph>(build_csr(make_path(6)));
  const std::vector<Edge> inserts = {{5, 9}};
  const DeltaCsr d = DeltaCsr::apply(base, nullptr, inserts, {});

  ASSERT_EQ(d.num_vertices(), 10);
  EXPECT_EQ(d.out_degree(9), 1);
  EXPECT_EQ(d.out_row(9)[0], 5);
  // Grown vertices that were never given edges read as empty rows.
  EXPECT_EQ(d.out_degree(7), 0);
  EXPECT_TRUE(d.out_row(7).empty());
  EXPECT_TRUE(d.in_row(7).empty());
  EXPECT_FALSE(d.has_edge(7, 5));

  // A removal alone never grows the vertex set.
  const std::vector<Edge> removes = {{40, 41}};
  const DeltaCsr d2 = DeltaCsr::apply(base, nullptr, {}, removes);
  EXPECT_EQ(d2.num_vertices(), base->num_vertices());
}

TEST(DeltaCsr, ChainedApplyCarriesPatchesForward) {
  const auto base = rmat10_base();
  PairSet oracle = undirected_pairs(*base);

  const std::vector<Edge> batch1_ins = {{1, 700}, {2, 701}};
  const std::vector<Edge> batch1_rem = {};
  apply_to_oracle(oracle, batch1_ins, batch1_rem);
  const DeltaCsr d1 = DeltaCsr::apply(base, nullptr, batch1_ins, batch1_rem);

  const std::vector<Edge> batch2_ins = {{700, 702}};
  const std::vector<Edge> batch2_rem = {{1, 700}};
  apply_to_oracle(oracle, batch2_ins, batch2_rem);
  const DeltaCsr d2 = DeltaCsr::apply(base, &d1, batch2_ins, batch2_rem);

  // Deltas never chain: d2 still overlays the original flat base, with
  // batch 1's surviving patches carried forward.
  EXPECT_EQ(d2.base_ptr().get(), base.get());
  EXPECT_TRUE(d2.has_edge(2, 701));   // batch 1, untouched by batch 2
  EXPECT_FALSE(d2.has_edge(1, 700));  // batch 1 edge removed by batch 2
  EXPECT_TRUE(d2.has_edge(700, 702));
  expect_rows_equal(d2, rebuild_from_oracle(oracle, base->num_vertices()));
}

TEST(DeltaCsr, DirectedOverlayPatchesBothSides) {
  BuildOptions opts;
  opts.symmetrize = false;
  EdgeList el;
  el.num_vertices = 5;
  el.add(0, 1);
  el.add(1, 2);
  el.add(3, 2);
  const auto base =
      std::make_shared<const CsrGraph>(build_csr(std::move(el), opts));
  ASSERT_FALSE(base->is_symmetric());

  const std::vector<Edge> inserts = {{2, 4}};
  const std::vector<Edge> removes = {{3, 2}};
  const DeltaCsr d = DeltaCsr::apply(base, nullptr, inserts, removes, opts);

  EXPECT_FALSE(d.is_symmetric());
  EXPECT_TRUE(d.has_edge(2, 4));
  EXPECT_FALSE(d.has_edge(4, 2));  // no mirror without symmetrize
  EXPECT_FALSE(d.has_edge(3, 2));
  EXPECT_EQ(d.out_degree(2), 1);
  EXPECT_EQ(d.in_degree(2), 1);  // only 1 -> 2 survives
  EXPECT_EQ(d.in_degree(4), 1);
  std::vector<vid_t> preds;
  d.for_each_in_neighbor(2, [&preds](vid_t u) {
    preds.push_back(u);
    return true;
  });
  EXPECT_EQ(preds, std::vector<vid_t>{1});
}

TEST(DeltaCsr, MaterializeEdgesRoundTripsThroughBuildCsr) {
  const auto base = rmat10_base();
  PairSet oracle = undirected_pairs(*base);
  const std::vector<Edge> inserts = {{10, 1100}, {11, 12}};
  const std::vector<Edge> removes = {{4, 5}};
  apply_to_oracle(oracle, inserts, removes);

  const DeltaCsr d = DeltaCsr::apply(base, nullptr, inserts, removes);
  const CsrGraph compacted = build_csr(d.materialize_edges());
  expect_rows_equal(d, compacted);
  // And the compacted graph is exactly what a from-scratch rebuild of
  // the surviving edge set produces.
  const CsrGraph expected = rebuild_from_oracle(oracle, d.num_vertices());
  ASSERT_EQ(compacted.num_edges(), expected.num_edges());
  for (vid_t v = 0; v < expected.num_vertices(); ++v) {
    const auto a = compacted.out_neighbors(v);
    const auto b = expected.out_neighbors(v);
    ASSERT_TRUE(std::ranges::equal(a, b)) << v;
  }
}

TEST(DeltaCsr, TopOutDegreeSelectionMatchesRebuiltCsr) {
  const auto base = rmat10_base();
  const std::vector<Edge> inserts = {{999, 1000}};
  const DeltaCsr d = DeltaCsr::apply(base, nullptr, inserts, {});
  const CsrGraph flat = build_csr(d.materialize_edges());
  EXPECT_EQ(top_out_degree_vertices(d, 16),
            top_out_degree_vertices(flat, 16));
}

TEST(DeltaCsr, ApplyValidatesItsInputs) {
  const auto base =
      std::make_shared<const CsrGraph>(build_csr(make_cycle(8)));
  const std::vector<Edge> one = {{0, 4}};

  EXPECT_THROW((void)DeltaCsr::apply(nullptr, nullptr, one, {}),
               std::invalid_argument);

  BuildOptions unsorted;
  unsorted.sort_neighbors = false;
  EXPECT_THROW((void)DeltaCsr::apply(base, nullptr, one, {}, unsorted),
               std::invalid_argument);
  BuildOptions dup;
  dup.deduplicate = false;
  EXPECT_THROW((void)DeltaCsr::apply(base, nullptr, one, {}, dup),
               std::invalid_argument);

  const std::vector<Edge> negative = {{-1, 3}};
  EXPECT_THROW((void)DeltaCsr::apply(base, nullptr, negative, {}),
               std::invalid_argument);
  EXPECT_THROW((void)DeltaCsr::apply(base, nullptr, {}, negative),
               std::invalid_argument);

  // prev must overlay this same base.
  const auto other =
      std::make_shared<const CsrGraph>(build_csr(make_cycle(8)));
  const DeltaCsr on_other = DeltaCsr::apply(other, nullptr, one, {});
  EXPECT_THROW((void)DeltaCsr::apply(base, &on_other, one, {}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------
// Bit-equality of traversals: the delta overlay and the full rebuild
// must be indistinguishable to every kernel — identical level maps,
// identical per-level |V|cq / |E|cq / scanned / next counters, and
// identical parents under one thread. Parameterised over thread count.
// ---------------------------------------------------------------------

void expect_bit_equal_traversals(const DeltaCsr& d, const CsrGraph& flat) {
  const CsrGraphView fv(flat);
  for (const vid_t root : sample_roots(flat, 3, 33)) {
    bfs::TraversalLog log_d_td;
    bfs::TraversalLog log_f_td;
    const bfs::BfsResult d_td = bfs::run_top_down(d, root, &log_d_td);
    const bfs::BfsResult f_td = bfs::run_top_down(fv, root, &log_f_td);

    bfs::TraversalLog log_d_bu;
    bfs::TraversalLog log_f_bu;
    const bfs::BfsResult d_bu = bfs::run_bottom_up(d, root, &log_d_bu);
    const bfs::BfsResult f_bu = bfs::run_bottom_up(fv, root, &log_f_bu);

    EXPECT_TRUE(bfs::same_levels(d_td, f_td)) << root;
    EXPECT_TRUE(bfs::same_levels(d_bu, f_bu)) << root;
    EXPECT_EQ(d_td.reached, f_td.reached) << root;
    EXPECT_EQ(d_td.edges_in_component, f_td.edges_in_component) << root;

    ASSERT_EQ(log_d_td.levels.size(), log_f_td.levels.size()) << root;
    for (std::size_t i = 0; i < log_d_td.levels.size(); ++i) {
      const bfs::LevelRecord& a = log_d_td.levels[i];
      const bfs::LevelRecord& b = log_f_td.levels[i];
      EXPECT_EQ(a.frontier_vertices, b.frontier_vertices) << root << "/" << i;
      EXPECT_EQ(a.frontier_edges, b.frontier_edges) << root << "/" << i;
      EXPECT_EQ(a.next_vertices, b.next_vertices) << root << "/" << i;
    }
    ASSERT_EQ(log_d_bu.levels.size(), log_f_bu.levels.size()) << root;
    for (std::size_t i = 0; i < log_d_bu.levels.size(); ++i) {
      const bfs::LevelRecord& a = log_d_bu.levels[i];
      const bfs::LevelRecord& b = log_f_bu.levels[i];
      EXPECT_EQ(a.frontier_vertices, b.frontier_vertices) << root << "/" << i;
      EXPECT_EQ(a.frontier_edges, b.frontier_edges) << root << "/" << i;
      EXPECT_EQ(a.bottom_up_scanned, b.bottom_up_scanned) << root << "/" << i;
      EXPECT_EQ(a.next_vertices, b.next_vertices) << root << "/" << i;
    }

    if (omp_get_max_threads() == 1) {
      EXPECT_EQ(d_td.parent, f_td.parent) << root;
      EXPECT_EQ(d_bu.parent, f_bu.parent) << root;
    }
    EXPECT_TRUE(bfs::validate_bfs(d, root, d_td).ok) << root;
  }
}

class DeltaTraversal : public ::testing::TestWithParam<int> {};

TEST_P(DeltaTraversal, BitEqualOnRmatWithInsertsAndRemoves) {
  omp_set_num_threads(GetParam());
  const auto base = rmat10_base();
  PairSet oracle = undirected_pairs(*base);
  // A batch with inserts, a vertex-growing insert, and removals — the
  // post-delete shape the serve layer publishes under mixed churn.
  const std::vector<Edge> inserts = {{5, 600}, {6, 601}, {7, 1500}};
  std::vector<Edge> removes;
  for (vid_t u = 0; u < base->num_vertices() && removes.size() < 4; u += 37) {
    if (base->out_degree(u) > 0) removes.push_back({u, base->out_neighbors(u)[0]});
  }
  apply_to_oracle(oracle, inserts, removes);

  const DeltaCsr d = DeltaCsr::apply(base, nullptr, inserts, removes);
  expect_bit_equal_traversals(d, rebuild_from_oracle(oracle, d.num_vertices()));
}

TEST_P(DeltaTraversal, BitEqualOnGridAcrossChainedBatches) {
  omp_set_num_threads(GetParam());
  const auto base =
      std::make_shared<const CsrGraph>(build_csr(make_grid(24, 24)));
  PairSet oracle = undirected_pairs(*base);

  const std::vector<Edge> b1_ins = {{0, 575}, {100, 475}};
  apply_to_oracle(oracle, b1_ins, {});
  const DeltaCsr d1 = DeltaCsr::apply(base, nullptr, b1_ins, {});
  expect_bit_equal_traversals(d1,
                              rebuild_from_oracle(oracle, d1.num_vertices()));

  const std::vector<Edge> b2_rem = {{0, 575}, {23, 47}};
  apply_to_oracle(oracle, {}, b2_rem);
  const DeltaCsr d2 = DeltaCsr::apply(base, &d1, {}, b2_rem);
  expect_bit_equal_traversals(d2,
                              rebuild_from_oracle(oracle, d2.num_vertices()));

  // Post-compaction: folding the overlay back to a flat CSR preserves
  // the traversal bit-for-bit.
  const CsrGraph compacted = build_csr(d2.materialize_edges());
  expect_rows_equal(d2, compacted);
}

TEST_P(DeltaTraversal, MsBfsOverDeltaMatchesFlatRebuild) {
  omp_set_num_threads(GetParam());
  const auto base = rmat10_base();
  PairSet oracle = undirected_pairs(*base);
  const std::vector<Edge> inserts = {{2, 512}, {300, 301}};
  const std::vector<Edge> removes = {{2, 512}};  // last-op per batch is ours
  // Note: apply() takes inserts and removes as separate spans with
  // removes applied after inserts, so insert+remove of the same edge
  // nets to "absent".
  apply_to_oracle(oracle, inserts, removes);

  const DeltaCsr d = DeltaCsr::apply(base, nullptr, inserts, removes);
  const CsrGraph flat = rebuild_from_oracle(oracle, d.num_vertices());

  const std::vector<vid_t> roots = sample_roots(flat, 8, 44);
  const bfs::MsBfsResult over_delta = bfs::ms_bfs(d, roots);
  const bfs::MsBfsResult over_flat = bfs::ms_bfs(CsrGraphView(flat), roots);
  ASSERT_EQ(over_delta.per_root.size(), over_flat.per_root.size());
  for (std::size_t i = 0; i < roots.size(); ++i) {
    EXPECT_EQ(over_delta.per_root[i].level, over_flat.per_root[i].level)
        << "lane " << i;
    EXPECT_EQ(over_delta.per_root[i].reached, over_flat.per_root[i].reached)
        << "lane " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, DeltaTraversal, ::testing::Values(1, 4));

}  // namespace
}  // namespace bfsx::graph
