// Unit tests for the textual ArchSpec configuration.
#include "sim/arch_config.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace bfsx::sim {
namespace {

TEST(ArchConfig, DefaultsToCpuBase) {
  const ArchSpec a = parse_arch_spec("");
  EXPECT_EQ(a.name, "custom");
  EXPECT_DOUBLE_EQ(a.bw_measured_gbps, make_sandy_bridge_cpu().bw_measured_gbps);
}

TEST(ArchConfig, BasePresetSelection) {
  EXPECT_DOUBLE_EQ(parse_arch_spec("base=gpu").bw_measured_gbps, 188);
  EXPECT_DOUBLE_EQ(parse_arch_spec("base=mic").clock_ghz, 1.09);
}

TEST(ArchConfig, BaseIsOrderIndependent) {
  const ArchSpec a = parse_arch_spec("bu_edge_miss_ns=0.5,base=gpu");
  EXPECT_DOUBLE_EQ(a.bu_edge_miss_ns, 0.5);       // override survives
  EXPECT_DOUBLE_EQ(a.bw_measured_gbps, 188);      // base applied first
}

TEST(ArchConfig, SetsEveryNumericKey) {
  const ArchSpec a = parse_arch_spec(
      "name=MyDev,clock_ghz=1.5,peak_sp_gflops=100,peak_dp_gflops=50,"
      "l1_kb=48,l2_kb=512,l3_mb=8,bw_theoretical_gbps=200,"
      "bw_measured_gbps=150,cores=12,level_overhead_us=5,"
      "td_edge_ns=0.2,td_fill_penalty_edges=1e6,td_fill_scale_edges=2e5,"
      "bu_vertex_ns=0.1,bu_edge_hit_ns=0.05,bu_edge_miss_ns=0.4");
  EXPECT_EQ(a.name, "MyDev");
  EXPECT_DOUBLE_EQ(a.clock_ghz, 1.5);
  EXPECT_EQ(a.cores, 12);
  EXPECT_DOUBLE_EQ(a.td_fill_penalty_edges, 1e6);
  EXPECT_DOUBLE_EQ(a.bu_edge_miss_ns, 0.4);
}

TEST(ArchConfig, ScientificNotationParses) {
  EXPECT_DOUBLE_EQ(parse_arch_spec("td_fill_penalty_edges=3.5e7")
                       .td_fill_penalty_edges,
                   3.5e7);
}

TEST(ArchConfig, RejectsUnknownKey) {
  EXPECT_THROW(parse_arch_spec("nonsense=1"), std::invalid_argument);
}

TEST(ArchConfig, RejectsBadNumber) {
  EXPECT_THROW(parse_arch_spec("clock_ghz=fast"), std::invalid_argument);
}

TEST(ArchConfig, RejectsTokenWithoutEquals) {
  EXPECT_THROW(parse_arch_spec("base=gpu,oops"), std::invalid_argument);
}

TEST(ArchConfig, RejectsUnknownBase) {
  EXPECT_THROW(parse_arch_spec("base=fpga"), std::invalid_argument);
}

TEST(ArchConfig, FormatParseRoundTrip) {
  const ArchSpec original = make_kepler_gpu();
  const ArchSpec back = parse_arch_spec(format_arch_spec(original));
  EXPECT_EQ(back.name, original.name);
  EXPECT_DOUBLE_EQ(back.clock_ghz, original.clock_ghz);
  EXPECT_DOUBLE_EQ(back.td_edge_ns, original.td_edge_ns);
  EXPECT_DOUBLE_EQ(back.bu_edge_miss_ns, original.bu_edge_miss_ns);
  EXPECT_EQ(back.cores, original.cores);
}

}  // namespace
}  // namespace bfsx::sim
