// Unit tests for 1D vertex partitioning (graph/partition.h).
#include "graph/partition.h"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/rmat.h"

namespace bfsx::graph {
namespace {

CsrGraph rmat_graph(int scale, int edgefactor, std::uint64_t seed = 7) {
  RmatParams p;
  p.scale = scale;
  p.edgefactor = edgefactor;
  p.seed = seed;
  return build_csr(generate_rmat(p));
}

TEST(PartitionStrategyParse, RoundTrips) {
  EXPECT_EQ(parse_partition_strategy("block"), PartitionStrategy::kBlock);
  EXPECT_EQ(parse_partition_strategy("balanced"),
            PartitionStrategy::kDegreeBalanced);
  EXPECT_STREQ(to_string(PartitionStrategy::kBlock), "block");
  EXPECT_STREQ(to_string(PartitionStrategy::kDegreeBalanced), "balanced");
  EXPECT_THROW(parse_partition_strategy("hash"), std::invalid_argument);
}

TEST(VertexPartition, BlockSplitsEvenly) {
  const CsrGraph g = build_csr(make_path(10));
  const VertexPartition part =
      partition_vertices(g, 4, PartitionStrategy::kBlock);
  ASSERT_EQ(part.num_parts(), 4);
  // 10 = 3 + 3 + 2 + 2.
  EXPECT_EQ(part.part_size(0), 3);
  EXPECT_EQ(part.part_size(1), 3);
  EXPECT_EQ(part.part_size(2), 2);
  EXPECT_EQ(part.part_size(3), 2);
  EXPECT_EQ(part.begin(0), 0);
  EXPECT_EQ(part.end(3), 10);
}

TEST(VertexPartition, RangesTileAndOwnerAgrees) {
  const CsrGraph g = rmat_graph(10, 8);
  for (const PartitionStrategy s :
       {PartitionStrategy::kBlock, PartitionStrategy::kDegreeBalanced}) {
    for (const int parts : {1, 2, 3, 5, 8}) {
      const VertexPartition part = partition_vertices(g, parts, s);
      ASSERT_EQ(part.num_parts(), parts);
      vid_t covered = 0;
      for (int p = 0; p < parts; ++p) {
        EXPECT_EQ(part.begin(p), covered);
        covered += part.part_size(p);
        for (vid_t v = part.begin(p); v < part.end(p); ++v) {
          ASSERT_EQ(part.owner(v), p);
        }
      }
      EXPECT_EQ(covered, g.num_vertices());
    }
  }
}

TEST(VertexPartition, OwnerRejectsOutOfRange) {
  const CsrGraph g = build_csr(make_path(6));
  const VertexPartition part =
      partition_vertices(g, 2, PartitionStrategy::kBlock);
  EXPECT_THROW(part.owner(-1), std::out_of_range);
  EXPECT_THROW(part.owner(6), std::out_of_range);
}

TEST(VertexPartition, RejectsBadInputs) {
  const CsrGraph g = build_csr(make_path(6));
  EXPECT_THROW(partition_vertices(g, 0, PartitionStrategy::kBlock),
               std::invalid_argument);
  EXPECT_THROW(VertexPartition({2, 4, 6}, PartitionStrategy::kBlock),
               std::invalid_argument);
  EXPECT_THROW(VertexPartition({0, 4, 2}, PartitionStrategy::kBlock),
               std::invalid_argument);
}

TEST(VertexPartition, MorePartsThanVerticesLeavesEmptyParts) {
  const CsrGraph g = build_csr(make_path(3));
  const VertexPartition part =
      partition_vertices(g, 8, PartitionStrategy::kBlock);
  vid_t total = 0;
  for (int p = 0; p < 8; ++p) total += part.part_size(p);
  EXPECT_EQ(total, 3);
  EXPECT_EQ(part.owner(0), 0);
}

TEST(VertexPartition, DegreeBalancedBeatsBlockOnSkewedGraph) {
  // R-MAT is heavily skewed toward low vertex ids, so equal vertex
  // blocks give the first part most of the edges; degree-balanced
  // boundaries should cut the worst part's edge share substantially.
  const CsrGraph g = rmat_graph(12, 16);
  const int parts = 4;
  const eid_t ideal = g.num_edges() / parts;

  auto worst_edges = [&](PartitionStrategy s) {
    const VertexPartition part = partition_vertices(g, parts, s);
    eid_t worst = 0;
    eid_t total = 0;
    for (int p = 0; p < parts; ++p) {
      const eid_t e = part_out_edges(g, part, p);
      worst = std::max(worst, e);
      total += e;
    }
    EXPECT_EQ(total, g.num_edges());
    return worst;
  };

  const eid_t block = worst_edges(PartitionStrategy::kBlock);
  const eid_t balanced = worst_edges(PartitionStrategy::kDegreeBalanced);
  EXPECT_LT(balanced, block);
  // Within 2x of a perfect cut (boundaries can only fall between rows).
  EXPECT_LE(balanced, 2 * ideal);
}

TEST(LocalSubgraph, RowsMatchGlobalGraph) {
  const CsrGraph g = rmat_graph(9, 8);
  for (const PartitionStrategy s :
       {PartitionStrategy::kBlock, PartitionStrategy::kDegreeBalanced}) {
    const VertexPartition part = partition_vertices(g, 3, s);
    eid_t edges_seen = 0;
    for (int p = 0; p < 3; ++p) {
      const LocalSubgraph sub = extract_subgraph(g, part, p);
      EXPECT_EQ(sub.first, part.begin(p));
      EXPECT_EQ(sub.num_local, part.part_size(p));
      EXPECT_EQ(sub.num_out_edges(), part_out_edges(g, part, p));
      edges_seen += sub.num_out_edges();
      for (vid_t v = part.begin(p); v < part.end(p); ++v) {
        ASSERT_TRUE(sub.owns(v));
        const auto global = g.out_neighbors(v);
        const auto local = sub.out_neighbors(v);
        ASSERT_EQ(local.size(), global.size());
        EXPECT_TRUE(std::equal(local.begin(), local.end(), global.begin()));
      }
      EXPECT_GT(sub.memory_footprint_bytes(), 0u);
    }
    EXPECT_EQ(edges_seen, g.num_edges());
  }
}

TEST(LocalSubgraph, DirectedGraphKeepsDistinctInRows) {
  // Directed path 0->1->2->3->4: out- and in-adjacency differ.
  EdgeList el;
  el.num_vertices = 5;
  for (vid_t v = 0; v + 1 < 5; ++v) el.add(v, v + 1);
  BuildOptions opts;
  opts.symmetrize = false;
  const CsrGraph g = build_directed_csr(std::move(el), opts);
  ASSERT_FALSE(g.is_symmetric());

  const VertexPartition part =
      partition_vertices(g, 2, PartitionStrategy::kBlock);
  for (int p = 0; p < 2; ++p) {
    const LocalSubgraph sub = extract_subgraph(g, part, p);
    EXPECT_FALSE(sub.in_offsets.empty());
    for (vid_t v = part.begin(p); v < part.end(p); ++v) {
      const auto global_in = g.in_neighbors(v);
      const auto local_in = sub.in_neighbors(v);
      ASSERT_EQ(local_in.size(), global_in.size());
      EXPECT_TRUE(
          std::equal(local_in.begin(), local_in.end(), global_in.begin()));
    }
  }
}

TEST(LocalSubgraph, SymmetricGraphSharesOutArraysForInAccess) {
  const CsrGraph g = build_csr(make_star(20));
  const VertexPartition part =
      partition_vertices(g, 2, PartitionStrategy::kBlock);
  const LocalSubgraph sub = extract_subgraph(g, part, 1);
  EXPECT_TRUE(sub.in_offsets.empty());
  for (vid_t v = part.begin(1); v < part.end(1); ++v) {
    const auto in = sub.in_neighbors(v);
    const auto out = sub.out_neighbors(v);
    EXPECT_EQ(in.data(), out.data());
  }
}

TEST(ExtractSubgraph, RejectsBadPart) {
  const CsrGraph g = build_csr(make_path(6));
  const VertexPartition part =
      partition_vertices(g, 2, PartitionStrategy::kBlock);
  EXPECT_THROW(extract_subgraph(g, part, -1), std::out_of_range);
  EXPECT_THROW(extract_subgraph(g, part, 2), std::out_of_range);
}

}  // namespace
}  // namespace bfsx::graph
