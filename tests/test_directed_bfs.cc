// Directed-graph BFS coverage: distinct in/out adjacency exercises the
// CSR dual-array path and the bottom-up kernel's reliance on
// *in*-neighbours.
#include <gtest/gtest.h>

#include "bfs/drivers.h"
#include "bfs/spmv.h"
#include "bfs/validate.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"

namespace bfsx::bfs {
namespace {

using graph::build_directed_csr;
using graph::EdgeList;

CsrGraph directed_chain_with_shortcut() {
  // 0->1->2->3->4 plus shortcut 0->3; distances: 0,1,2,1,2.
  EdgeList el;
  el.num_vertices = 5;
  el.add(0, 1);
  el.add(1, 2);
  el.add(2, 3);
  el.add(3, 4);
  el.add(0, 3);
  return build_directed_csr(std::move(el));
}

TEST(DirectedBfs, SerialDistancesRespectDirection) {
  const CsrGraph g = directed_chain_with_shortcut();
  const BfsResult r = run_serial(g, 0);
  EXPECT_EQ(r.level, (std::vector<std::int32_t>{0, 1, 2, 1, 2}));
  EXPECT_EQ(r.reached, 5);
  // Directed graphs count each stored edge once.
  EXPECT_EQ(r.edges_in_component, 5);
}

TEST(DirectedBfs, ReverseDirectionIsUnreachable) {
  const CsrGraph g = directed_chain_with_shortcut();
  const BfsResult r = run_serial(g, 4);
  EXPECT_EQ(r.reached, 1);  // sink vertex reaches only itself
}

TEST(DirectedBfs, AllKernelsAgreeOnDirectedGraphs) {
  // Random directed graph: top-down (out-edges), bottom-up (in-edges)
  // and SpMV must agree with the serial oracle.
  const EdgeList el = graph::make_erdos_renyi(400, 2'000, 13);
  const CsrGraph g = build_directed_csr(EdgeList(el));
  for (vid_t root : {vid_t{0}, vid_t{37}, vid_t{399}}) {
    if (g.out_degree(root) == 0) continue;
    const BfsResult serial = run_serial(g, root);
    EXPECT_TRUE(same_levels(serial, run_top_down(g, root)));
    EXPECT_TRUE(same_levels(serial, run_bottom_up(g, root)));
    EXPECT_TRUE(same_levels(serial, run_spmv_bfs(g, root)));
  }
}

TEST(DirectedBfs, ValidatorAcceptsDirectedResults) {
  const CsrGraph g = directed_chain_with_shortcut();
  const BfsResult r = run_top_down(g, 0);
  const ValidationReport rep = validate_bfs(g, 0, r);
  EXPECT_TRUE(rep.ok) << rep.error;
}

TEST(DirectedBfs, ValidatorAcceptsDirectedBackEdgeAcrossLevels) {
  // 0->1->2->3 plus back edge 3->0. The back edge spans three levels,
  // which is legal in a directed graph: only lv <= lu + 1 must hold
  // along an out-edge.
  EdgeList el;
  el.num_vertices = 4;
  el.add(0, 1);
  el.add(1, 2);
  el.add(2, 3);
  el.add(3, 0);
  const CsrGraph g = build_directed_csr(std::move(el));
  const BfsResult r = run_serial(g, 0);
  EXPECT_EQ(r.level, (std::vector<std::int32_t>{0, 1, 2, 3}));
  const ValidationReport rep = validate_bfs(g, 0, r);
  EXPECT_TRUE(rep.ok) << rep.error;
}

TEST(DirectedBfs, ValidatorRejectsFabricatedReverseTreeEdge) {
  const CsrGraph g = directed_chain_with_shortcut();
  BfsResult r = run_serial(g, 0);
  // (4 -> 3) is not a directed edge; claiming 4 as 3's parent is wrong
  // even though the undirected view has the edge.
  r.parent[3] = 4;
  r.level[3] = r.level[4] + 1;
  EXPECT_FALSE(validate_bfs(g, 0, r).ok);
}

TEST(DirectedBfs, BottomUpUsesInNeighboursNotOut) {
  // Star pointing outward: 0 -> {1..4}. From 0, one bottom-up level
  // must find all spokes via their in-lists.
  EdgeList el;
  el.num_vertices = 5;
  for (vid_t v = 1; v < 5; ++v) el.add(0, v);
  const CsrGraph g = build_directed_csr(std::move(el));
  const BfsResult r = run_bottom_up(g, 0);
  EXPECT_EQ(r.reached, 5);
  for (vid_t v = 1; v < 5; ++v) EXPECT_EQ(r.parent[static_cast<std::size_t>(v)], 0);
}

TEST(DirectedBfs, DagLevelsAreLongestOfShortestPaths) {
  // Diamond DAG: 0->{1,2}, {1,2}->3, 3->4.
  EdgeList el;
  el.num_vertices = 5;
  el.add(0, 1);
  el.add(0, 2);
  el.add(1, 3);
  el.add(2, 3);
  el.add(3, 4);
  const CsrGraph g = build_directed_csr(std::move(el));
  const BfsResult r = run_serial(g, 0);
  EXPECT_EQ(r.level, (std::vector<std::int32_t>{0, 1, 1, 2, 3}));
}

}  // namespace
}  // namespace bfsx::bfs
