// Tests for vertex reordering and the Beamer alpha/beta policy.
#include <gtest/gtest.h>

#include "bfs/drivers.h"
#include "bfs/validate.h"
#include "core/adaptive_bfs.h"
#include "core/level_trace.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "graph/reorder.h"
#include "graph/rmat.h"

namespace bfsx {
namespace {

using graph::build_csr;
using graph::CsrGraph;
using graph::EdgeList;
using graph::Permutation;
using graph::vid_t;

EdgeList rmat_edges() {
  graph::RmatParams p;
  p.scale = 11;
  return graph::generate_rmat(p);
}

// ---- permutations ----------------------------------------------------

TEST(Reorder, ValidateRejectsNonBijections) {
  EXPECT_THROW(graph::validate_permutation({0, 0, 1}, 3),
               std::invalid_argument);
  EXPECT_THROW(graph::validate_permutation({0, 1}, 3), std::invalid_argument);
  EXPECT_THROW(graph::validate_permutation({0, 3, 1}, 3),
               std::invalid_argument);
  EXPECT_NO_THROW(graph::validate_permutation({2, 0, 1}, 3));
}

TEST(Reorder, DegreeOrderPutsHubsFirst) {
  const CsrGraph g = build_csr(rmat_edges());
  const Permutation perm = graph::degree_order(g);
  graph::validate_permutation(perm, g.num_vertices());
  const CsrGraph h = build_csr(
      graph::apply_permutation(rmat_edges(), perm));
  // New ids are sorted by descending degree.
  for (vid_t v = 0; v + 1 < h.num_vertices(); ++v) {
    EXPECT_GE(h.out_degree(v), h.out_degree(v + 1));
  }
}

TEST(Reorder, BfsOrderIsContiguousFromRoot) {
  const CsrGraph g = build_csr(graph::make_binary_tree(15));
  const Permutation perm = graph::bfs_order(g, 0);
  graph::validate_permutation(perm, g.num_vertices());
  EXPECT_EQ(perm[0], 0);  // root first
  // Level order of a complete binary tree is the identity.
  for (vid_t v = 0; v < 15; ++v) EXPECT_EQ(perm[static_cast<std::size_t>(v)], v);
}

TEST(Reorder, InvertRoundTrips) {
  const CsrGraph g = build_csr(rmat_edges());
  const Permutation perm = graph::degree_order(g);
  const Permutation inv = graph::invert_permutation(perm);
  for (std::size_t v = 0; v < perm.size(); ++v) {
    EXPECT_EQ(inv[static_cast<std::size_t>(perm[v])], static_cast<vid_t>(v));
  }
}

// BFS is equivariant under relabelling: levels in the new namespace are
// the old levels transported through the permutation.
TEST(Reorder, BfsIsPermutationEquivariant) {
  const EdgeList el = rmat_edges();
  const CsrGraph g = build_csr(EdgeList(el));
  const Permutation perm = graph::degree_order(g);
  const CsrGraph h = build_csr(graph::apply_permutation(el, perm));

  const vid_t root = graph::sample_roots(g, 1, 3)[0];
  const bfs::BfsResult rg = bfs::run_serial(g, root);
  const bfs::BfsResult rh =
      bfs::run_serial(h, perm[static_cast<std::size_t>(root)]);
  EXPECT_EQ(rg.reached, rh.reached);
  EXPECT_EQ(rg.edges_in_component, rh.edges_in_component);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(rg.level[static_cast<std::size_t>(v)],
              rh.level[static_cast<std::size_t>(perm[static_cast<std::size_t>(v)])]);
  }
}

// ---- Beamer policy ----------------------------------------------------

TEST(BeamerPolicy, SwitchesToBottomUpWhenFrontierEdgesDominate) {
  const core::BeamerPolicy p{14.0, 24.0};
  // m_f = 200 > m_u/alpha = 1400/14 = 100 -> BU.
  EXPECT_EQ(p.decide(200, 1400, 10, 1000, bfs::Direction::kTopDown),
            bfs::Direction::kBottomUp);
  // m_f = 50 <= 100 -> stay TD.
  EXPECT_EQ(p.decide(50, 1400, 10, 1000, bfs::Direction::kTopDown),
            bfs::Direction::kTopDown);
}

TEST(BeamerPolicy, SwitchesBackWhenFrontierShrinks) {
  const core::BeamerPolicy p{14.0, 24.0};
  // n_f = 10 < n/beta = 1000/24 = 41.7 -> back to TD.
  EXPECT_EQ(p.decide(5, 100, 10, 1000, bfs::Direction::kBottomUp),
            bfs::Direction::kTopDown);
  EXPECT_EQ(p.decide(5, 100, 100, 1000, bfs::Direction::kBottomUp),
            bfs::Direction::kBottomUp);
}

TEST(BeamerPolicy, IsStateful) {
  // The same frontier keeps BU while in BU but would not trigger BU
  // from TD — exactly the hysteresis the M/N rule lacks.
  const core::BeamerPolicy p{14.0, 24.0};
  const graph::eid_t m_f = 50;
  const graph::eid_t m_u = 1400;
  const vid_t n_f = 100;
  const vid_t n = 1000;
  EXPECT_EQ(p.decide(m_f, m_u, n_f, n, bfs::Direction::kTopDown),
            bfs::Direction::kTopDown);
  EXPECT_EQ(p.decide(m_f, m_u, n_f, n, bfs::Direction::kBottomUp),
            bfs::Direction::kBottomUp);
}

TEST(BeamerPolicy, ValidateRejectsNonPositive) {
  EXPECT_THROW((core::BeamerPolicy{0, 24}).validate(), std::invalid_argument);
  EXPECT_THROW((core::BeamerPolicy{14, -1}).validate(), std::invalid_argument);
}

TEST(BeamerExecutor, ReplayMatchesExecution) {
  graph::RmatParams p;
  p.scale = 11;
  const CsrGraph g = build_csr(graph::generate_rmat(p));
  const vid_t root = graph::sample_roots(g, 1, 9)[0];
  const core::LevelTrace trace = core::build_level_trace(g, root);
  const sim::Device cpu{sim::make_sandy_bridge_cpu()};
  for (const core::BeamerPolicy& policy :
       {core::BeamerPolicy{14, 24}, core::BeamerPolicy{2, 100},
        core::BeamerPolicy{100, 2}}) {
    const double replayed = core::replay_beamer(trace, cpu.spec(), policy);
    const core::CombinationRun run =
        core::run_combination_beamer(g, root, cpu, policy);
    EXPECT_NEAR(replayed, run.seconds, 1e-12 + 1e-9 * run.seconds)
        << "alpha=" << policy.alpha << " beta=" << policy.beta;
    EXPECT_TRUE(bfs::validate_bfs(g, root, run.result).ok);
  }
}

TEST(BeamerExecutor, DefaultsUseBothDirectionsOnRmat) {
  graph::RmatParams p;
  p.scale = 12;
  const CsrGraph g = build_csr(graph::generate_rmat(p));
  const vid_t root = graph::sample_roots(g, 1, 9)[0];
  const sim::Device cpu{sim::make_sandy_bridge_cpu()};
  const core::CombinationRun run =
      core::run_combination_beamer(g, root, cpu, {14, 24});
  bool saw_td = false;
  bool saw_bu = false;
  for (const core::ExecutedLevel& lvl : run.levels) {
    saw_td |= lvl.outcome.direction == bfs::Direction::kTopDown;
    saw_bu |= lvl.outcome.direction == bfs::Direction::kBottomUp;
  }
  EXPECT_TRUE(saw_td);
  EXPECT_TRUE(saw_bu);
}

}  // namespace
}  // namespace bfsx
