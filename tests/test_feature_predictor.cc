// Unit tests for the Fig. 7 feature builder and the SwitchPredictor.
#include "core/predictor.h"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/builder.h"
#include "graph/rmat.h"

namespace bfsx::core {
namespace {

TEST(Features, FromRmatMatchesGeneratorParameters) {
  graph::RmatParams p;
  p.scale = 20;  // 1M vertices
  p.edgefactor = 16;
  const GraphFeatures f = features_from_rmat(p);
  EXPECT_NEAR(f.vertices_millions, 1.048576, 1e-9);
  EXPECT_NEAR(f.edges_millions, 2 * 16 * 1.048576, 1e-6);
  EXPECT_DOUBLE_EQ(f.a, 0.57);
  EXPECT_DOUBLE_EQ(f.d, 0.05);
}

TEST(Features, FromGraphReadsCsr) {
  graph::RmatParams p;
  p.scale = 10;
  const graph::CsrGraph g = graph::build_csr(graph::generate_rmat(p));
  const GraphFeatures f = features_from_graph(g, 0.5, 0.2, 0.2, 0.1);
  EXPECT_NEAR(f.vertices_millions,
              static_cast<double>(g.num_vertices()) / 1e6, 1e-12);
  EXPECT_NEAR(f.edges_millions, static_cast<double>(g.num_edges()) / 1e6,
              1e-12);
  EXPECT_DOUBLE_EQ(f.b, 0.2);
}

TEST(Features, SampleLayoutIsFigSeven) {
  const GraphFeatures gf{32.0, 256.0, 0.57, 0.19, 0.19, 0.05};
  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  const sim::ArchSpec gpu = sim::make_kepler_gpu();
  const std::vector<double> s = build_sample(gf, cpu, gpu);
  ASSERT_EQ(s.size(), kNumFeatures);
  EXPECT_DOUBLE_EQ(s[0], 32.0);               // V
  EXPECT_DOUBLE_EQ(s[1], 256.0);              // E
  EXPECT_DOUBLE_EQ(s[2], 0.57);               // A
  EXPECT_DOUBLE_EQ(s[6], cpu.peak_sp_gflops); // P1 (top-down side)
  EXPECT_DOUBLE_EQ(s[7], cpu.l1_kb);          // L1
  EXPECT_DOUBLE_EQ(s[8], cpu.bw_measured_gbps);  // B1
  EXPECT_DOUBLE_EQ(s[9], gpu.peak_sp_gflops);    // P2 (bottom-up side)
  EXPECT_DOUBLE_EQ(s[11], gpu.bw_measured_gbps); // B2
}

TEST(Features, SameArchitectureDuplicatesBlock) {
  const GraphFeatures gf{1, 32, 0.57, 0.19, 0.19, 0.05};
  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  const std::vector<double> s = build_sample(gf, cpu, cpu);
  EXPECT_DOUBLE_EQ(s[6], s[9]);
  EXPECT_DOUBLE_EQ(s[7], s[10]);
  EXPECT_DOUBLE_EQ(s[8], s[11]);
}

TEST(Features, NamesAlignWithLayout) {
  const auto names = feature_names();
  EXPECT_STREQ(names[0], "V_millions");
  EXPECT_STREQ(names[6], "P1_gflops");
  EXPECT_STREQ(names[11], "B2");
}

ml::Dataset synthetic_policy_data(bool for_n) {
  // Target depends smoothly on V and the TD-side bandwidth: enough for
  // the predictor plumbing tests (real labels are exercised in the
  // trainer integration test).
  ml::Dataset d;
  const sim::ArchSpec archs[] = {sim::make_sandy_bridge_cpu(),
                                 sim::make_kepler_gpu(),
                                 sim::make_knights_corner_mic()};
  for (double v : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    for (double ef : {8.0, 16.0, 32.0}) {
      for (const auto& td : archs) {
        for (const auto& bu : archs) {
          const GraphFeatures gf{v, 2 * v * ef, 0.57, 0.19, 0.19, 0.05};
          const double target = (for_n ? 30.0 : 60.0) + 3.0 * v +
                                0.1 * td.bw_measured_gbps -
                                0.05 * bu.bw_measured_gbps + 0.5 * ef;
          d.add(build_sample(gf, td, bu), target);
        }
      }
    }
  }
  return d;
}

TEST(Predictor, LearnsSmoothPolicySurface) {
  const SwitchPredictor pred(
      ml::SvrModel::fit(synthetic_policy_data(false), {.c = 50, .epsilon = 0.02}),
      ml::SvrModel::fit(synthetic_policy_data(true), {.c = 50, .epsilon = 0.02}));
  const GraphFeatures gf{2.0, 2 * 2 * 16.0, 0.57, 0.19, 0.19, 0.05};
  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  const sim::ArchSpec gpu = sim::make_kepler_gpu();
  const HybridPolicy p = pred.predict(gf, cpu, gpu);
  const double want_m = 60 + 3 * 2 + 0.1 * 34 - 0.05 * 188 + 0.5 * 16;
  const double want_n = 30 + 3 * 2 + 0.1 * 34 - 0.05 * 188 + 0.5 * 16;
  EXPECT_NEAR(p.m, want_m, 3.0);
  EXPECT_NEAR(p.n, want_n, 3.0);
}

TEST(Predictor, ClampsIntoValidRange) {
  // A model trained on constant extreme targets must still produce a
  // policy inside [1, 300].
  ml::Dataset low;
  ml::Dataset high;
  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    const GraphFeatures gf{v, 32 * v, 0.57, 0.19, 0.19, 0.05};
    low.add(build_sample(gf, cpu, cpu), -500.0);
    high.add(build_sample(gf, cpu, cpu), 5000.0);
  }
  const SwitchPredictor pred(ml::SvrModel::fit(low), ml::SvrModel::fit(high));
  const GraphFeatures gf{2.5, 80, 0.57, 0.19, 0.19, 0.05};
  const HybridPolicy p = pred.predict(gf, cpu);
  EXPECT_GE(p.m, kMinSwitchKnob);
  EXPECT_LE(p.m, kMaxSwitchKnob);
  EXPECT_GE(p.n, kMinSwitchKnob);
  EXPECT_LE(p.n, kMaxSwitchKnob);
  EXPECT_NO_THROW(p.validate());
}

TEST(Predictor, SaveLoadRoundTrip) {
  const SwitchPredictor pred(
      ml::SvrModel::fit(synthetic_policy_data(false)),
      ml::SvrModel::fit(synthetic_policy_data(true)));
  std::stringstream ss;
  pred.save(ss);
  const SwitchPredictor back = SwitchPredictor::load(ss);
  const GraphFeatures gf{1.5, 48, 0.57, 0.19, 0.19, 0.05};
  const sim::ArchSpec gpu = sim::make_kepler_gpu();
  const HybridPolicy a = pred.predict(gf, gpu);
  const HybridPolicy b = back.predict(gf, gpu);
  EXPECT_DOUBLE_EQ(a.m, b.m);
  EXPECT_DOUBLE_EQ(a.n, b.n);
}

}  // namespace
}  // namespace bfsx::core
