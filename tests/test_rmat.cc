// Unit and property tests for the R-MAT Kronecker generator.
#include "graph/rmat.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "graph/builder.h"
#include "graph/graph_stats.h"

namespace bfsx::graph {
namespace {

TEST(Rmat, RespectsRequestedSizes) {
  RmatParams p;
  p.scale = 10;
  p.edgefactor = 8;
  const EdgeList el = generate_rmat(p);
  EXPECT_EQ(el.num_vertices, 1024);
  EXPECT_EQ(el.num_edges(), 8 * 1024);
  for (const Edge& e : el.edges) {
    EXPECT_GE(e.src, 0);
    EXPECT_LT(e.src, el.num_vertices);
    EXPECT_GE(e.dst, 0);
    EXPECT_LT(e.dst, el.num_vertices);
  }
}

TEST(Rmat, IsDeterministicUnderSeed) {
  RmatParams p;
  p.scale = 9;
  const EdgeList a = generate_rmat(p);
  const EdgeList b = generate_rmat(p);
  EXPECT_EQ(a.edges, b.edges);
}

TEST(Rmat, SeedsProduceDifferentGraphs) {
  RmatParams p;
  p.scale = 9;
  p.seed = 1;
  const EdgeList a = generate_rmat(p);
  p.seed = 2;
  const EdgeList b = generate_rmat(p);
  EXPECT_NE(a.edges, b.edges);
}

TEST(Rmat, SkewedParametersProduceSkewedDegrees) {
  // With A=0.57 the degree distribution must be far more skewed than a
  // uniform graph: max degree well above the mean.
  RmatParams p;
  p.scale = 12;
  p.edgefactor = 16;
  const CsrGraph g = build_csr(generate_rmat(p));
  const DegreeStats s = compute_degree_stats(g);
  EXPECT_GT(static_cast<double>(s.max), 8.0 * s.mean);
  EXPECT_GT(s.isolated, 0);  // scale-free graphs strand low-id leaves
}

TEST(Rmat, UniformParametersApproachErdosRenyi) {
  RmatParams p;
  p.scale = 12;
  p.edgefactor = 16;
  p.a = p.b = p.c = p.d = 0.25;
  p.noise = 0.0;
  const CsrGraph g = build_csr(generate_rmat(p));
  const DegreeStats s = compute_degree_stats(g);
  // Uniform quadrant probabilities give a near-Poisson degree profile:
  // max degree within a small factor of the mean.
  EXPECT_LT(static_cast<double>(s.max), 4.0 * s.mean);
}

TEST(Rmat, PermutationPreservesDegreeMultiset) {
  RmatParams p;
  p.scale = 10;
  p.seed = 77;
  p.noise = 0.0;
  p.permute_vertices = false;
  const CsrGraph g1 = build_csr(generate_rmat(p));
  p.permute_vertices = true;
  const CsrGraph g2 = build_csr(generate_rmat(p));
  std::vector<eid_t> d1;
  std::vector<eid_t> d2;
  for (vid_t v = 0; v < g1.num_vertices(); ++v) {
    d1.push_back(g1.out_degree(v));
    d2.push_back(g2.out_degree(v));
  }
  std::sort(d1.begin(), d1.end());
  std::sort(d2.begin(), d2.end());
  EXPECT_EQ(d1, d2);
}

TEST(Rmat, WithoutPermutationHubsHaveSmallIds) {
  // The raw Kronecker recursion biases mass toward low ids when A is
  // the largest quadrant; the permutation option exists to destroy
  // exactly this artefact.
  RmatParams p;
  p.scale = 12;
  p.permute_vertices = false;
  const CsrGraph g = build_csr(generate_rmat(p));
  const vid_t n = g.num_vertices();
  eid_t low_half = 0;
  eid_t high_half = 0;
  for (vid_t v = 0; v < n; ++v) {
    (v < n / 2 ? low_half : high_half) += g.out_degree(v);
  }
  EXPECT_GT(low_half, 2 * high_half);
}

#ifdef _OPENMP
/// Runs `fn` with the OpenMP worker pool clamped to `threads`, restoring
/// the previous setting afterwards.
template <typename Fn>
auto with_threads(int threads, Fn&& fn) {
  const int saved = omp_get_max_threads();
  omp_set_num_threads(threads);
  auto result = fn();
  omp_set_num_threads(saved);
  return result;
}

TEST(Rmat, BitIdenticalAcrossThreadCounts) {
  // Eight generation blocks (2^13 * 16 / kRmatBlockEdges), so the block
  // partition is genuinely exercised. Permutation and noise on: both
  // draw from streams whose position is independent of the worker count.
  RmatParams p;
  p.scale = 13;
  p.edgefactor = 16;
  ASSERT_GT(static_cast<std::size_t>(p.num_edges()), kRmatBlockEdges);
  const EdgeList serial = with_threads(1, [&] { return generate_rmat(p); });
  for (int threads : {2, 3, 4}) {
    const EdgeList parallel =
        with_threads(threads, [&] { return generate_rmat(p); });
    EXPECT_EQ(serial.edges, parallel.edges) << "threads=" << threads;
  }
}

TEST(Rmat, BitIdenticalAcrossThreadCountsNoNoiseNoPermute) {
  // The noise-free draw consumes a different number of PRNG values per
  // edge; the block scheme must be invariant for that shape too.
  RmatParams p;
  p.scale = 13;
  p.edgefactor = 16;
  p.noise = 0.0;
  p.permute_vertices = false;
  const EdgeList serial = with_threads(1, [&] { return generate_rmat(p); });
  const EdgeList parallel = with_threads(4, [&] { return generate_rmat(p); });
  EXPECT_EQ(serial.edges, parallel.edges);
}
#endif  // _OPENMP

TEST(Rmat, SingleBlockAndMultiBlockListsAreBothDeterministic) {
  // Below one block the generator degenerates to a single stream; above
  // it the jump table kicks in. Same-seed determinism must hold in both
  // regimes (the cross-regime layout is pinned by kRmatBlockEdges, not
  // by the machine).
  for (int scale : {9, 13}) {
    RmatParams p;
    p.scale = scale;
    const EdgeList a = generate_rmat(p);
    const EdgeList b = generate_rmat(p);
    EXPECT_EQ(a.edges, b.edges) << "scale=" << scale;
  }
}

TEST(RmatValidate, RejectsBadParameters) {
  RmatParams p;
  p.scale = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.edgefactor = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.a = 0.9;  // sum != 1
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  p.noise = 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = {};
  EXPECT_NO_THROW(p.validate());
}

// Parameterised sweep: every (scale, edgefactor) combination must build
// a structurally sane CSR.
class RmatSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RmatSweep, BuildsSaneCsr) {
  const auto [scale, ef] = GetParam();
  RmatParams p;
  p.scale = scale;
  p.edgefactor = ef;
  const CsrGraph g = build_csr(generate_rmat(p));
  EXPECT_EQ(g.num_vertices(), vid_t{1} << scale);
  // Symmetrised and deduplicated: at most 2x the generated count, and
  // at least half of it (dedup and self-loop removal shrink a little).
  EXPECT_LE(g.num_edges(), 2 * p.num_edges());
  EXPECT_GE(g.num_edges(), p.num_edges() / 2);
  // Symmetry: out and in views are the same arrays.
  EXPECT_TRUE(g.is_symmetric());
}

INSTANTIATE_TEST_SUITE_P(ScaleAndEdgefactor, RmatSweep,
                         ::testing::Combine(::testing::Values(8, 10, 12),
                                            ::testing::Values(4, 8, 16)));

}  // namespace
}  // namespace bfsx::graph
