// Unit tests for the bfsx CLI option parser (tools/args.h).
#include "tools/args.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace bfsx::tools {
namespace {

/// argv helper: parses the given tokens from index 0.
Args parse(std::vector<const char*> tokens) {
  return {static_cast<int>(tokens.size()),
          const_cast<char**>(tokens.data()), 0};
}

TEST(CliArgs, SpaceSeparatedValues) {
  const Args args = parse({"--scale", "16", "--engine", "dist"});
  EXPECT_EQ(args.get_int("scale", 0), 16);
  EXPECT_EQ(args.get_or("engine", ""), "dist");
  EXPECT_FALSE(args.get("missing").has_value());
}

TEST(CliArgs, EqualsSeparatedValues) {
  const Args args = parse({"--scale=16", "--m=14.5", "--out=graph.bel"});
  EXPECT_EQ(args.get_int("scale", 0), 16);
  EXPECT_DOUBLE_EQ(args.get_double("m", 0.0), 14.5);
  EXPECT_EQ(args.get_or("out", ""), "graph.bel");
}

TEST(CliArgs, MixedSyntaxesInOneCommandLine) {
  const Args args = parse({"--scale=14", "--engine", "dist", "--devices=4"});
  EXPECT_EQ(args.get_int("scale", 0), 14);
  EXPECT_EQ(args.get_or("engine", ""), "dist");
  EXPECT_EQ(args.get_int("devices", 0), 4);
}

TEST(CliArgs, EqualsValueMayContainEquals) {
  // Arch specs are key=value lists themselves; only the first '='
  // splits the option.
  const Args args = parse({"--device=base=gpu,bu_edge_miss_ns=0.5"});
  EXPECT_EQ(args.get_or("device", ""), "base=gpu,bu_edge_miss_ns=0.5");
}

TEST(CliArgs, EmptyValueIsAllowedWithEquals) {
  const Args args = parse({"--tag="});
  EXPECT_EQ(args.get_or("tag", "unset"), "");
}

TEST(CliArgs, RejectsDuplicateOptions) {
  EXPECT_THROW(parse({"--scale", "16", "--scale", "18"}),
               std::invalid_argument);
  EXPECT_THROW(parse({"--scale=16", "--scale=18"}), std::invalid_argument);
  EXPECT_THROW(parse({"--scale", "16", "--scale=18"}), std::invalid_argument);
}

TEST(CliArgs, RejectsMalformedTokens) {
  EXPECT_THROW(parse({"scale", "16"}), std::invalid_argument);
  EXPECT_THROW(parse({"--scale"}), std::invalid_argument);
  EXPECT_THROW(parse({"--=16"}), std::invalid_argument);
}

TEST(CliArgs, DefaultsApplyWhenAbsent) {
  const Args args = parse({});
  EXPECT_EQ(args.get_int("scale", 16), 16);
  EXPECT_DOUBLE_EQ(args.get_double("m", 14.0), 14.0);
  EXPECT_EQ(args.get_or("engine", "hybrid"), "hybrid");
}

}  // namespace
}  // namespace bfsx::tools
