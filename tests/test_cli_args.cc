// Unit tests for the bfsx CLI option parser (tools/args.h).
#include "tools/args.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace bfsx::tools {
namespace {

/// argv helper: parses the given tokens from index 0.
Args parse(std::vector<const char*> tokens) {
  return {static_cast<int>(tokens.size()),
          const_cast<char**>(tokens.data()), 0};
}

TEST(CliArgs, SpaceSeparatedValues) {
  const Args args = parse({"--scale", "16", "--engine", "dist"});
  EXPECT_EQ(args.get_int("scale", 0), 16);
  EXPECT_EQ(args.get_or("engine", ""), "dist");
  EXPECT_FALSE(args.get("missing").has_value());
}

TEST(CliArgs, EqualsSeparatedValues) {
  const Args args = parse({"--scale=16", "--m=14.5", "--out=graph.bel"});
  EXPECT_EQ(args.get_int("scale", 0), 16);
  EXPECT_DOUBLE_EQ(args.get_double("m", 0.0), 14.5);
  EXPECT_EQ(args.get_or("out", ""), "graph.bel");
}

TEST(CliArgs, MixedSyntaxesInOneCommandLine) {
  const Args args = parse({"--scale=14", "--engine", "dist", "--devices=4"});
  EXPECT_EQ(args.get_int("scale", 0), 14);
  EXPECT_EQ(args.get_or("engine", ""), "dist");
  EXPECT_EQ(args.get_int("devices", 0), 4);
}

TEST(CliArgs, EqualsValueMayContainEquals) {
  // Arch specs are key=value lists themselves; only the first '='
  // splits the option.
  const Args args = parse({"--device=base=gpu,bu_edge_miss_ns=0.5"});
  EXPECT_EQ(args.get_or("device", ""), "base=gpu,bu_edge_miss_ns=0.5");
}

TEST(CliArgs, EmptyValueIsAllowedWithEquals) {
  const Args args = parse({"--tag="});
  EXPECT_EQ(args.get_or("tag", "unset"), "");
}

TEST(CliArgs, RejectsDuplicateOptions) {
  EXPECT_THROW(parse({"--scale", "16", "--scale", "18"}),
               std::invalid_argument);
  EXPECT_THROW(parse({"--scale=16", "--scale=18"}), std::invalid_argument);
  EXPECT_THROW(parse({"--scale", "16", "--scale=18"}), std::invalid_argument);
}

TEST(CliArgs, RejectsMalformedTokens) {
  EXPECT_THROW(parse({"scale", "16"}), std::invalid_argument);
  EXPECT_THROW(parse({"--=16"}), std::invalid_argument);
}

TEST(CliArgs, DefaultsApplyWhenAbsent) {
  const Args args = parse({});
  EXPECT_EQ(args.get_int("scale", 16), 16);
  EXPECT_DOUBLE_EQ(args.get_double("m", 14.0), 14.0);
  EXPECT_EQ(args.get_or("engine", "hybrid"), "hybrid");
}

TEST(CliArgs, BareFlagIsTrueOnlyThroughGetBool) {
  // `--metrics` at end of line and `--native` before another option are
  // both bare boolean flags now, not parse errors.
  const Args args = parse({"--native", "--scale", "12", "--metrics"});
  EXPECT_TRUE(args.get_bool("native", false));
  EXPECT_TRUE(args.get_bool("metrics", false));
  EXPECT_TRUE(args.has("metrics"));
  EXPECT_EQ(args.get_int("scale", 0), 12);
  // A bare flag has no value: every non-bool accessor must refuse it.
  EXPECT_THROW((void)args.get("metrics"), std::invalid_argument);
  EXPECT_THROW((void)args.get_int("metrics", 0), std::invalid_argument);
}

TEST(CliArgs, GetBoolSpellings) {
  const Args args = parse({"--a=true", "--b=false", "--c", "1", "--d", "off",
                           "--e", "yes"});
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_TRUE(args.get_bool("c", false));
  EXPECT_FALSE(args.get_bool("d", true));
  EXPECT_TRUE(args.get_bool("e", false));
  EXPECT_TRUE(args.get_bool("absent", true));
  EXPECT_FALSE(args.get_bool("absent", false));
}

TEST(CliArgs, GetBoolRejectsNonBooleanValue) {
  const Args args = parse({"--native", "maybe"});
  try {
    (void)args.get_bool("native", false);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--native"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("maybe"), std::string::npos);
  }
}

TEST(CliArgs, StrictIntegerParsing) {
  const Args args = parse({"--scale", "12abc", "--neg", "-3", "--big",
                           "99999999999999999999"});
  EXPECT_EQ(args.get_int("neg", 0), -3);
  try {
    (void)args.get_int("scale", 0);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The error names the option and the offending value.
    EXPECT_NE(std::string(e.what()).find("--scale"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("12abc"), std::string::npos);
  }
  EXPECT_THROW((void)args.get_int("big", 0), std::invalid_argument);
}

TEST(CliArgs, StrictDoubleParsing) {
  const Args args = parse({"--m", "14.5x", "--n", "2e1", "--o", ".5"});
  EXPECT_DOUBLE_EQ(args.get_double("n", 0.0), 20.0);
  EXPECT_DOUBLE_EQ(args.get_double("o", 0.0), 0.5);
  try {
    (void)args.get_double("m", 0.0);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--m"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("14.5x"), std::string::npos);
  }
}

TEST(CliArgs, CheckKnownAcceptsRegisteredOptions) {
  const Args args = parse({"--scale", "20", "--engine", "dist"});
  EXPECT_NO_THROW(args.check_known({"scale", "engine", "roots"}));
}

TEST(CliArgs, CheckKnownNamesUnknownOptionWithSuggestion) {
  const Args args = parse({"--scael", "20"});
  try {
    args.check_known({"scale", "engine", "roots"});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--scael"), std::string::npos);
    EXPECT_NE(what.find("--scale"), std::string::npos) << what;
  }
}

TEST(SuggestClosest, EditDistanceBasics) {
  EXPECT_EQ(edit_distance("", ""), 0u);
  EXPECT_EQ(edit_distance("abc", "abc"), 0u);
  EXPECT_EQ(edit_distance("abc", ""), 3u);
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3u);
  EXPECT_EQ(edit_distance("serve", "sevre"), 2u);  // transposition = 2 edits
}

TEST(SuggestClosest, FindsTransposedSubcommand) {
  const std::vector<std::string_view> commands = {
      "generate", "bfs", "analyze", "trace", "tune",
      "train",    "predict", "serve", "help"};
  EXPECT_EQ(suggest_closest("sevre", commands), "serve");
  EXPECT_EQ(suggest_closest("generat", commands), "generate");
  EXPECT_EQ(suggest_closest("analize", commands), "analyze");
}

TEST(SuggestClosest, RefusesFarFetchedMatches) {
  const std::vector<std::string_view> commands = {"serve", "bfs"};
  EXPECT_EQ(suggest_closest("quux", commands), "");
  // A suggestion must be cheaper than retyping the whole word: for a
  // 2-char typo nothing 2+ edits away qualifies.
  EXPECT_EQ(suggest_closest("xy", commands), "");
  EXPECT_EQ(suggest_closest("", commands), "");
}

TEST(SuggestClosest, PrefersTheCheapestCandidate) {
  const std::vector<std::string_view> candidates = {"native-td",
                                                    "native-bu",
                                                    "native-hybrid"};
  EXPECT_EQ(suggest_closest("native-tb", candidates), "native-td");
  EXPECT_EQ(suggest_closest("native-hybird", candidates), "native-hybrid");
}

TEST(CliArgs, CheckKnownWithoutCloseMatchStillNamesKey) {
  const Args args = parse({"--zzzzzz", "1"});
  try {
    args.check_known({"scale", "engine"});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--zzzzzz"), std::string::npos);
    EXPECT_EQ(what.find("did you mean"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace bfsx::tools
