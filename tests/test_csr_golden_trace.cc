// Golden-trace regression for the GraphView refactor: the complete
// per-level counter profile of the scale-16 R-MAT benchmark graph,
// captured from the pre-refactor CSR kernels (`bfsx trace --scale 16
// --edgefactor 16 --seed 2014`, root 55025). The templated kernels,
// reached through the CsrGraphView adapter, must reproduce every column
// bit for bit — |V|cq, |E|cq, the bottom-up hit/miss scan counts, and
// the next-frontier sizes. Any deviation means the refactor changed
// traversal semantics, not just plumbing.
#include <gtest/gtest.h>

#include <vector>

#include "core/level_trace.h"
#include "graph/builder.h"
#include "graph/graph_stats.h"
#include "graph/rmat.h"

namespace bfsx::core {
namespace {

struct GoldenLevel {
  std::int32_t level;
  graph::vid_t frontier_vertices;
  graph::eid_t frontier_edges;
  graph::eid_t bu_hit;
  graph::eid_t bu_miss;
  graph::vid_t next_vertices;
};

// Captured before the kernels were templated over GraphView; the root
// is sample_roots(g, 1, 7)[0] on the same graph.
constexpr graph::vid_t kGoldenRoot = 55025;
constexpr graph::vid_t kGoldenVertices = 65536;
constexpr graph::eid_t kGoldenEdges = 1821470;
const std::vector<GoldenLevel> kGolden = {
    {0, 1, 11, 4429, 1816238, 11},
    {1, 11, 5221, 525710, 815077, 3734},
    {2, 3734, 1001161, 55939, 5468, 38920},
    {3, 38920, 809609, 4130, 50, 4113},
    {4, 4113, 5418, 24, 26, 24},
    {5, 24, 24, 0, 26, 0},
};

TEST(CsrGoldenTrace, Scale16CountersAreBitIdenticalToPreRefactorRun) {
  graph::RmatParams p;
  p.scale = 16;
  p.edgefactor = 16;
  p.seed = 2014;
  const graph::CsrGraph g = graph::build_csr(graph::generate_rmat(p));
  ASSERT_EQ(g.num_vertices(), kGoldenVertices);
  ASSERT_EQ(g.num_edges(), kGoldenEdges);

  const graph::vid_t root = graph::sample_roots(g, 1, 7)[0];
  ASSERT_EQ(root, kGoldenRoot);

  const LevelTrace trace = build_level_trace(g, root);
  EXPECT_EQ(trace.num_vertices, kGoldenVertices);
  EXPECT_EQ(trace.num_edges, kGoldenEdges);
  ASSERT_EQ(trace.levels.size(), kGolden.size());
  for (std::size_t i = 0; i < kGolden.size(); ++i) {
    const TraceLevel& got = trace.levels[i];
    const GoldenLevel& want = kGolden[i];
    EXPECT_EQ(got.level, want.level) << "level " << i;
    EXPECT_EQ(got.frontier_vertices, want.frontier_vertices) << "level " << i;
    EXPECT_EQ(got.frontier_edges, want.frontier_edges) << "level " << i;
    EXPECT_EQ(got.bu_edges_hit, want.bu_hit) << "level " << i;
    EXPECT_EQ(got.bu_edges_miss, want.bu_miss) << "level " << i;
    EXPECT_EQ(got.next_vertices, want.next_vertices) << "level " << i;
  }
}

}  // namespace
}  // namespace bfsx::core
