// Unit tests for the architecture descriptors and the per-level cost
// model — including the Table IV shape properties the calibration must
// reproduce.
#include "sim/cost_model.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace bfsx::sim {
namespace {

TEST(ArchPresets, MatchTableTwoCatalogue) {
  const ArchSpec cpu = make_sandy_bridge_cpu();
  EXPECT_DOUBLE_EQ(cpu.clock_ghz, 2.00);
  EXPECT_DOUBLE_EQ(cpu.peak_sp_gflops, 256);
  EXPECT_DOUBLE_EQ(cpu.bw_measured_gbps, 34);
  EXPECT_EQ(cpu.cores, 8);

  const ArchSpec mic = make_knights_corner_mic();
  EXPECT_DOUBLE_EQ(mic.clock_ghz, 1.09);
  EXPECT_DOUBLE_EQ(mic.bw_measured_gbps, 159);
  EXPECT_EQ(mic.cores, 61);

  const ArchSpec gpu = make_kepler_gpu();
  EXPECT_DOUBLE_EQ(gpu.peak_sp_gflops, 3950);
  EXPECT_DOUBLE_EQ(gpu.bw_measured_gbps, 188);
  EXPECT_DOUBLE_EQ(gpu.l3_mb, 0);
}

TEST(CostModel, EmptyTopDownLevelCostsOnlyOverhead) {
  const ArchSpec cpu = make_sandy_bridge_cpu();
  EXPECT_DOUBLE_EQ(top_down_level_seconds(cpu, 0),
                   cpu.level_overhead_us * 1e-6);
}

TEST(CostModel, TopDownCostIsMonotoneInWork) {
  const ArchSpec gpu = make_kepler_gpu();
  double prev = 0.0;
  for (graph::eid_t w : {1, 100, 10'000, 1'000'000, 100'000'000}) {
    const double t = top_down_level_seconds(gpu, w);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(CostModel, RejectsNegativeWork) {
  const ArchSpec cpu = make_sandy_bridge_cpu();
  EXPECT_THROW(top_down_level_seconds(cpu, -1), std::invalid_argument);
  EXPECT_THROW(bottom_up_level_seconds(cpu, -1, 0, 0), std::invalid_argument);
  EXPECT_THROW(bottom_up_level_seconds(cpu, 1, -1, 0), std::invalid_argument);
}

// ---- Table IV shape properties -------------------------------------

// CPU beats GPU at top-down on small frontiers ("the CPU has 11x
// speedup over GPU" in levels 1-2)...
TEST(TableFourShape, CpuWinsSmallFrontierTopDown) {
  const ArchSpec cpu = make_sandy_bridge_cpu();
  const ArchSpec gpu = make_kepler_gpu();
  // At ~300k frontier edges the CPU is several times faster; by ~1.5M
  // edges (the paper's level-2 regime) the gap approaches the 11x of
  // Table IV.
  EXPECT_LT(top_down_level_seconds(cpu, 300'000),
            top_down_level_seconds(gpu, 300'000) / 3.0);
  EXPECT_LT(top_down_level_seconds(cpu, 1'500'000),
            top_down_level_seconds(gpu, 1'500'000) / 7.0);
}

// ...but GPU wins the *tiny* last levels where fixed overhead dominates
// (Table IV levels 8-9: GPU 0.23ms vs CPU 0.72ms).
TEST(TableFourShape, GpuWinsTinyFrontierTopDown) {
  const ArchSpec cpu = make_sandy_bridge_cpu();
  const ArchSpec gpu = make_kepler_gpu();
  EXPECT_LT(top_down_level_seconds(gpu, 100),
            top_down_level_seconds(cpu, 100));
}

// GPU beats CPU at bottom-up through the fat middle levels (~3x in the
// paper, via the V-sweep parallelism).
TEST(TableFourShape, GpuWinsBigBottomUpLevels) {
  const ArchSpec cpu = make_sandy_bridge_cpu();
  const ArchSpec gpu = make_kepler_gpu();
  // Realistic mid-level counts (traces show failed scans collapse once
  // the frontier is fat — the misses left are the low-degree tail).
  const graph::vid_t v = 8'000'000;
  const double cpu_t = bottom_up_level_seconds(cpu, v, 30'000'000, 500'000);
  const double gpu_t = bottom_up_level_seconds(gpu, v, 30'000'000, 500'000);
  EXPECT_GT(cpu_t / gpu_t, 2.0);
  EXPECT_LT(cpu_t / gpu_t, 6.0);
}

// Level-1 bottom-up (all-miss scans) punishes the GPU hard: Table IV
// shows 439ms GPU vs 54ms CPU, i.e. roughly 8x.
TEST(TableFourShape, AllMissBottomUpPunishesGpu) {
  const ArchSpec cpu = make_sandy_bridge_cpu();
  const ArchSpec gpu = make_kepler_gpu();
  const graph::vid_t v = 8'000'000;
  const graph::eid_t miss = 256'000'000;
  const double cpu_t = bottom_up_level_seconds(cpu, v, 0, miss);
  const double gpu_t = bottom_up_level_seconds(gpu, v, 0, miss);
  EXPECT_GT(gpu_t / cpu_t, 5.0);
  EXPECT_LT(gpu_t / cpu_t, 12.0);
  // Absolute scale sanity against the paper's measurements.
  EXPECT_NEAR(gpu_t, 0.439, 0.10);
  EXPECT_NEAR(cpu_t, 0.054, 0.015);
}

// GPU top-down at the level-3/4 peak should sit near the paper's
// 0.26s for ~200M frontier edges; CPU near 0.073s.
TEST(TableFourShape, PeakTopDownAbsoluteScale) {
  const ArchSpec cpu = make_sandy_bridge_cpu();
  const ArchSpec gpu = make_kepler_gpu();
  EXPECT_NEAR(top_down_level_seconds(gpu, 200'000'000), 0.262, 0.06);
  EXPECT_NEAR(top_down_level_seconds(cpu, 200'000'000), 0.073, 0.02);
}

// On the GPU, a tiny-frontier top-down level must be cheaper than any
// bottom-up level (that is why GPUCB switches back to top-down at the
// end) — and the reverse must hold in the middle.
TEST(TableFourShape, GpuCrossoverBetweenDirections) {
  const ArchSpec gpu = make_kepler_gpu();
  const graph::vid_t v = 8'000'000;
  const double bu_floor = bottom_up_level_seconds(gpu, v, 0, 0);
  EXPECT_LT(top_down_level_seconds(gpu, 300), bu_floor);
  EXPECT_GT(top_down_level_seconds(gpu, 200'000'000),
            bottom_up_level_seconds(gpu, v, 25'000'000, 1'000'000));
}

// MIC is the slowest platform for the combination (Fig. 9 baseline).
TEST(TableFourShape, MicIsSlowestAtEveryPhase) {
  const ArchSpec cpu = make_sandy_bridge_cpu();
  const ArchSpec mic = make_knights_corner_mic();
  const graph::vid_t v = 8'000'000;
  EXPECT_GT(bottom_up_level_seconds(mic, v, 30'000'000, 5'000'000),
            bottom_up_level_seconds(cpu, v, 30'000'000, 5'000'000));
  EXPECT_GT(top_down_level_seconds(mic, 1'000'000),
            top_down_level_seconds(cpu, 1'000'000));
}

// ---- core scaling ---------------------------------------------------

TEST(WithCores, FullCoresIsIdentityAndFewerIsSlower) {
  const ArchSpec cpu = make_sandy_bridge_cpu();
  const ArchSpec same = cpu.with_cores(8);
  EXPECT_DOUBLE_EQ(same.td_edge_ns, cpu.td_edge_ns);
  const ArchSpec one = cpu.with_cores(1);
  EXPECT_NEAR(one.td_edge_ns, 8.0 * cpu.td_edge_ns, 1e-12);
  EXPECT_GT(top_down_level_seconds(one, 10'000'000),
            top_down_level_seconds(cpu, 10'000'000));
}

TEST(WithCores, RejectsOutOfRange) {
  const ArchSpec cpu = make_sandy_bridge_cpu();
  EXPECT_THROW(cpu.with_cores(0), std::invalid_argument);
  EXPECT_THROW(cpu.with_cores(9), std::invalid_argument);
}

TEST(WithCores, OverheadStaysFlat) {
  const ArchSpec mic = make_knights_corner_mic();
  EXPECT_DOUBLE_EQ(mic.with_cores(1).level_overhead_us,
                   mic.level_overhead_us);
}

// ---- interconnect ---------------------------------------------------

TEST(Interconnect, TransferIsLatencyPlusBytes) {
  InterconnectSpec link;
  link.latency_us = 10;
  link.bandwidth_gbps = 6;
  EXPECT_DOUBLE_EQ(transfer_seconds(link, 0), 1e-5);
  EXPECT_NEAR(transfer_seconds(link, 6'000'000'000ULL), 1.0 + 1e-5, 1e-9);
}

TEST(Interconnect, HandoffBytesAreTwoBitmaps) {
  EXPECT_EQ(handoff_bytes(8), 2u);
  EXPECT_EQ(handoff_bytes(8'000'000), 2'000'000u);
  EXPECT_EQ(handoff_bytes(9), 4u);  // rounds up per bitmap
}

}  // namespace
}  // namespace bfsx::sim
