// Unit tests for the metrics registry (obs/registry.h).
#include "obs/registry.h"

#include <gtest/gtest.h>

#include <thread>

namespace bfsx::obs {
namespace {

TEST(ObsRegistry, CountersAccumulate) {
  Registry r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.counter("levels"), 0);
  r.add("levels");
  r.add("levels", 4);
  r.add("handoffs", 0);
  EXPECT_EQ(r.counter("levels"), 5);
  EXPECT_EQ(r.counter("handoffs"), 0);
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.counters().size(), 2u);
}

TEST(ObsRegistry, TimersAccumulateSecondsAndScopeCount) {
  Registry r;
  r.record_seconds("bfs", 0.25);
  r.record_seconds("bfs", 0.5);
  const Registry::Timer t = r.timer("bfs");
  EXPECT_DOUBLE_EQ(t.seconds, 0.75);
  EXPECT_EQ(t.count, 2);
  EXPECT_EQ(r.timer("never").count, 0);
}

TEST(ObsRegistry, ScopedTimerRecordsElapsedWallTime) {
  Registry r;
  {
    ScopedTimer scope(r, "sleep");
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const Registry::Timer t = r.timer("sleep");
  EXPECT_EQ(t.count, 1);
  EXPECT_GE(t.seconds, 0.004);
  EXPECT_LT(t.seconds, 5.0);  // sanity: not absurdly large
}

TEST(ObsRegistry, FormatListsEveryEntry) {
  Registry r;
  r.add("runner.roots", 8);
  r.record_seconds("runner.engine_seconds", 0.125);
  const std::string text = r.format();
  EXPECT_NE(text.find("runner.roots"), std::string::npos);
  EXPECT_NE(text.find("8"), std::string::npos);
  EXPECT_NE(text.find("runner.engine_seconds"), std::string::npos);
}

TEST(ObsRegistry, ToJsonShape) {
  Registry r;
  r.add("a", 2);
  r.record_seconds("t", 1.5);
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a\":2"), std::string::npos);
  EXPECT_NE(json.find("\"timers\""), std::string::npos);
  EXPECT_NE(json.find("\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

}  // namespace
}  // namespace bfsx::obs
