// Unit tests for the single-architecture combination executor.
#include "core/adaptive_bfs.h"

#include <gtest/gtest.h>

#include "bfs/validate.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "graph/rmat.h"

namespace bfsx::core {
namespace {

graph::CsrGraph rmat_graph() {
  graph::RmatParams p;
  p.scale = 12;
  return graph::build_csr(graph::generate_rmat(p));
}

TEST(Combination, ProducesValidBfsUnderAnyPolicy) {
  const graph::CsrGraph g = rmat_graph();
  const sim::Device cpu{sim::make_sandy_bridge_cpu()};
  const auto roots = graph::sample_roots(g, 2, 13);
  for (graph::vid_t root : roots) {
    for (const HybridPolicy& p :
         {HybridPolicy{1, 1}, HybridPolicy{14, 24}, HybridPolicy{300, 300}}) {
      const CombinationRun run = run_combination(g, root, cpu, p);
      EXPECT_TRUE(bfs::validate_bfs(g, root, run.result).ok)
          << "M=" << p.m << " N=" << p.n;
      EXPECT_GT(run.seconds, 0.0);
      EXPECT_FALSE(run.levels.empty());
    }
  }
}

TEST(Combination, UsesBothDirectionsAtModerateKnobs) {
  const graph::CsrGraph g = rmat_graph();
  const sim::Device cpu{sim::make_sandy_bridge_cpu()};
  const auto roots = graph::sample_roots(g, 1, 13);
  const CombinationRun run = run_combination(g, roots[0], cpu, {14, 24});
  bool saw_td = false;
  bool saw_bu = false;
  for (const ExecutedLevel& lvl : run.levels) {
    saw_td |= lvl.outcome.direction == bfs::Direction::kTopDown;
    saw_bu |= lvl.outcome.direction == bfs::Direction::kBottomUp;
  }
  EXPECT_TRUE(saw_td);
  EXPECT_TRUE(saw_bu);
  EXPECT_GE(run.direction_switches, 1);
}

TEST(Combination, MatchesLevelCount) {
  const graph::CsrGraph g = graph::build_csr(graph::make_binary_tree(255));
  const sim::Device gpu{sim::make_kepler_gpu()};
  const CombinationRun run = run_combination(g, 0, gpu, {14, 24});
  EXPECT_EQ(run.levels.size(), 8u);  // depth-7 tree: levels 0..7 expanded
  for (const ExecutedLevel& lvl : run.levels) {
    EXPECT_EQ(lvl.device, "KeplerK20xGPU");
  }
}

TEST(Combination, SecondsAreSumOfLevels) {
  const graph::CsrGraph g = rmat_graph();
  const sim::Device mic{sim::make_knights_corner_mic()};
  const auto roots = graph::sample_roots(g, 1, 21);
  const CombinationRun run = run_combination(g, roots[0], mic, {10, 10});
  double sum = 0;
  for (const ExecutedLevel& lvl : run.levels) sum += lvl.outcome.seconds;
  EXPECT_DOUBLE_EQ(run.seconds, sum);
  EXPECT_DOUBLE_EQ(run.transfer_seconds, 0.0);
}

TEST(Combination, BeatsPureDirectionsOnSmallWorldGraph) {
  // The Beamer result the whole paper builds on: the hybrid must beat
  // both pure directions on a scale-free graph.
  const graph::CsrGraph g = rmat_graph();
  const sim::Device cpu{sim::make_sandy_bridge_cpu()};
  const auto roots = graph::sample_roots(g, 1, 13);
  const double td = run_pure(g, roots[0], cpu, bfs::Direction::kTopDown).seconds;
  const double bu = run_pure(g, roots[0], cpu, bfs::Direction::kBottomUp).seconds;
  const double cb = run_combination(g, roots[0], cpu, {14, 24}).seconds;
  EXPECT_LT(cb, td);
  EXPECT_LT(cb, bu);
}

TEST(Combination, TepsAccessorConsistent) {
  const graph::CsrGraph g = rmat_graph();
  const sim::Device cpu{sim::make_sandy_bridge_cpu()};
  const auto roots = graph::sample_roots(g, 1, 13);
  const CombinationRun run = run_combination(g, roots[0], cpu, {14, 24});
  EXPECT_DOUBLE_EQ(
      run.teps(),
      static_cast<double>(run.result.edges_in_component) / run.seconds);
}

TEST(PureRuns, AgreeWithEachOtherOnLevels) {
  const graph::CsrGraph g = rmat_graph();
  const sim::Device cpu{sim::make_sandy_bridge_cpu()};
  const auto roots = graph::sample_roots(g, 1, 13);
  const CombinationRun td = run_pure(g, roots[0], cpu, bfs::Direction::kTopDown);
  const CombinationRun bu = run_pure(g, roots[0], cpu, bfs::Direction::kBottomUp);
  EXPECT_EQ(td.result.level, bu.result.level);
  EXPECT_EQ(td.result.reached, bu.result.reached);
}

TEST(Combination, InvalidPolicyThrows) {
  const graph::CsrGraph g = graph::build_csr(graph::make_path(4));
  const sim::Device cpu{sim::make_sandy_bridge_cpu()};
  EXPECT_THROW(run_combination(g, 0, cpu, {0.5, 3}), std::invalid_argument);
}

}  // namespace
}  // namespace bfsx::core
