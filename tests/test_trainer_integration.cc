// Integration tests: the full offline-training -> online-prediction
// pipeline of paper Fig. 6, on container-sized graphs.
#include "core/trainer.h"

#include <gtest/gtest.h>

#include "bfs/validate.h"
#include "core/api.h"
#include "graph/builder.h"
#include "graph/graph_stats.h"

namespace bfsx::core {
namespace {

/// Small config (scales 10-11, coarse grid) so the whole pipeline runs
/// in seconds inside the test suite.
TrainerConfig tiny_config() {
  TrainerConfig cfg;
  for (int scale : {10, 11}) {
    for (int ef : {8, 16}) {
      graph::RmatParams p;
      p.scale = scale;
      p.edgefactor = ef;
      p.seed = 101;
      cfg.graphs.push_back(p);
    }
  }
  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  const sim::ArchSpec gpu = sim::make_kepler_gpu();
  cfg.arch_pairs = {{cpu, cpu}, {gpu, gpu}, {cpu, gpu}};
  cfg.candidates = SwitchCandidates::coarse_grid();
  return cfg;
}

TEST(Trainer, GeneratesOneSamplePerConfiguration) {
  const TrainerConfig cfg = tiny_config();
  const TrainingData data = generate_training_data(cfg);
  const std::size_t want = cfg.graphs.size() * cfg.arch_pairs.size();
  EXPECT_EQ(data.m_data.size(), want);
  EXPECT_EQ(data.n_data.size(), want);
  EXPECT_EQ(data.m_data.num_features(), kNumFeatures);
  for (double m : data.m_data.y) {
    EXPECT_GE(m, kMinSwitchKnob);
    EXPECT_LE(m, kMaxSwitchKnob);
  }
}

TEST(Trainer, LabelsAreReproducible) {
  const TrainerConfig cfg = tiny_config();
  const TrainingData a = generate_training_data(cfg);
  const TrainingData b = generate_training_data(cfg);
  EXPECT_EQ(a.m_data.y, b.m_data.y);
  EXPECT_EQ(a.n_data.y, b.n_data.y);
}

TEST(Trainer, ParallelLabelingMatchesSerialBitExactly) {
  TrainerConfig cfg = tiny_config();
  cfg.parallel_labeling = false;
  const TrainingData serial = generate_training_data(cfg);
  cfg.parallel_labeling = true;
  const TrainingData parallel = generate_training_data(cfg);
  EXPECT_EQ(serial.m_data.x, parallel.m_data.x);
  EXPECT_EQ(serial.m_data.y, parallel.m_data.y);
  EXPECT_EQ(serial.n_data.y, parallel.n_data.y);
  EXPECT_EQ(serial.t_data.x, parallel.t_data.x);
  EXPECT_EQ(serial.t_data.y, parallel.t_data.y);
}

TEST(Trainer, DefaultConfigIsPaperSized) {
  const TrainerConfig cfg = default_trainer_config();
  const std::size_t samples = cfg.graphs.size() * cfg.arch_pairs.size();
  EXPECT_GE(samples, 120u);  // "140 training samples" regime
  EXPECT_LE(samples, 200u);
}

TEST(Pipeline, TrainedPredictorIsNearExhaustiveOnHeldOutGraph) {
  const TrainerConfig cfg = tiny_config();
  const SwitchPredictor pred = train_predictor(generate_training_data(cfg));

  // Held-out graph: same family, unseen seed/size combination.
  graph::RmatParams p;
  p.scale = 11;
  p.edgefactor = 12;
  p.seed = 999;
  const graph::CsrGraph g = graph::build_csr(graph::generate_rmat(p));
  const graph::vid_t root = graph::sample_roots(g, 1, 5)[0];
  const LevelTrace trace = build_level_trace(g, root);

  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  const CandidateSweep sweep =
      sweep_single(trace, cpu, SwitchCandidates::paper_grid());
  const HybridPolicy predicted =
      pred.predict(features_from_rmat(p), cpu, cpu);
  const double predicted_seconds = replay_single(trace, cpu, predicted);

  // The paper reports regression reaching ~95% of the exhaustive best
  // with 140 samples; with this deliberately tiny training set we
  // require 70% — the trainer bench measures the real figure. (At this
  // scale the CPU's whole sweep range is narrow, so this is the only
  // meaningful bound; range membership below guards against NaNs.)
  EXPECT_GE(sweep.best_seconds() / predicted_seconds, 0.70);
  EXPECT_GE(predicted_seconds, sweep.best_seconds());
  EXPECT_LE(predicted_seconds, sweep.worst_seconds());
}

TEST(Pipeline, RunAdaptiveEndToEnd) {
  const TrainerConfig cfg = tiny_config();
  const SwitchPredictor pred = train_predictor(generate_training_data(cfg));

  graph::RmatParams p;
  p.scale = 11;
  p.seed = 4242;
  const graph::CsrGraph g = graph::build_csr(graph::generate_rmat(p));
  const graph::vid_t root = graph::sample_roots(g, 1, 5)[0];

  sim::Machine machine = sim::make_paper_node();
  const CombinationRun run =
      run_adaptive(g, root, features_from_rmat(p), machine, pred);
  EXPECT_TRUE(bfs::validate_bfs(g, root, run.result).ok);
  EXPECT_GT(run.seconds, 0.0);
  EXPECT_EQ(run.levels.front().device, "SandyBridgeCPU");
}

TEST(Pipeline, RunAdaptiveSingleEndToEnd) {
  const TrainerConfig cfg = tiny_config();
  const SwitchPredictor pred = train_predictor(generate_training_data(cfg));

  graph::RmatParams p;
  p.scale = 10;
  p.seed = 7;
  const graph::CsrGraph g = graph::build_csr(graph::generate_rmat(p));
  const graph::vid_t root = graph::sample_roots(g, 1, 5)[0];
  const sim::Device gpu{sim::make_kepler_gpu()};
  const CombinationRun run =
      run_adaptive_single(g, root, features_from_rmat(p), gpu, pred);
  EXPECT_TRUE(bfs::validate_bfs(g, root, run.result).ok);
  for (const ExecutedLevel& lvl : run.levels) {
    EXPECT_EQ(lvl.device, "KeplerK20xGPU");
  }
}

TEST(Trainer, LabelConfigurationCrossUsesLink) {
  graph::RmatParams p;
  p.scale = 11;
  const graph::CsrGraph g = graph::build_csr(graph::generate_rmat(p));
  const LevelTrace trace =
      build_level_trace(g, graph::sample_roots(g, 1, 5)[0]);
  const ArchPair cross{sim::make_sandy_bridge_cpu(), sim::make_kepler_gpu()};
  sim::InterconnectSpec cheap;
  cheap.latency_us = 0.0;
  cheap.bandwidth_gbps = 1e6;
  sim::InterconnectSpec expensive;
  expensive.latency_us = 5e5;  // half a second per handoff
  const SwitchCandidates cands = SwitchCandidates::coarse_grid();
  const TunedPolicy with_cheap =
      label_configuration(trace, cross, cheap, cands);
  const TunedPolicy with_expensive =
      label_configuration(trace, cross, expensive, cands);
  // An absurdly expensive link must make the tuned plan slower (or keep
  // everything on the host, which caps the damage).
  EXPECT_GE(with_expensive.seconds, with_cheap.seconds);
}

}  // namespace
}  // namespace bfsx::core
