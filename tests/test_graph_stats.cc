// Unit tests for graph statistics and root sampling.
#include "graph/graph_stats.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/rmat.h"

namespace bfsx::graph {
namespace {

TEST(DegreeStats, StarGraph) {
  const CsrGraph g = build_csr(make_star(10));
  const DegreeStats s = compute_degree_stats(g);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 9);
  EXPECT_DOUBLE_EQ(s.mean, 18.0 / 10.0);
  EXPECT_EQ(s.isolated, 0);
}

TEST(DegreeStats, CountsIsolatedVertices) {
  EdgeList el;
  el.num_vertices = 5;
  el.add(0, 1);
  const CsrGraph g = build_csr(std::move(el));
  EXPECT_EQ(compute_degree_stats(g).isolated, 3);
}

TEST(DegreeHistogram, BucketsArePlausible) {
  const CsrGraph g = build_csr(make_star(17));  // hub degree 16
  const auto hist = degree_histogram_log2(g);
  // 16 spokes of degree 1 in bucket 1; the hub (degree 16) in bucket 5.
  ASSERT_GE(hist.size(), 6u);
  EXPECT_EQ(hist[1], 16);
  EXPECT_EQ(hist[5], 1);
}

TEST(Components, TwoCliques) {
  const CsrGraph g = build_csr(make_two_cliques(10));
  const ComponentStats cs = compute_components(g);
  EXPECT_EQ(cs.num_components, 2);
  EXPECT_EQ(cs.largest_size, 5);
}

TEST(Components, ConnectedPath) {
  const CsrGraph g = build_csr(make_path(20));
  const ComponentStats cs = compute_components(g);
  EXPECT_EQ(cs.num_components, 1);
  EXPECT_EQ(cs.largest_size, 20);
  EXPECT_EQ(cs.largest_representative, 0);
}

TEST(Components, IsolatedVerticesAreSingletons) {
  EdgeList el;
  el.num_vertices = 4;
  el.add(0, 1);
  const CsrGraph g = build_csr(std::move(el));
  EXPECT_EQ(compute_components(g).num_components, 3);
}

TEST(SampleRoots, AllHaveEdgesAndAreDeterministic) {
  RmatParams p;
  p.scale = 10;
  const CsrGraph g = build_csr(generate_rmat(p));
  const auto roots1 = sample_roots(g, 16, 5);
  const auto roots2 = sample_roots(g, 16, 5);
  EXPECT_EQ(roots1, roots2);
  EXPECT_EQ(roots1.size(), 16u);
  for (vid_t r : roots1) EXPECT_GT(g.out_degree(r), 0);
}

TEST(SampleRoots, ThrowsWhenNoEligibleVertices) {
  EdgeList el;
  el.num_vertices = 8;  // all isolated
  const CsrGraph g = build_csr(std::move(el));
  EXPECT_THROW(sample_roots(g, 4, 1), std::runtime_error);
}

TEST(Summarize, MentionsCounts) {
  const CsrGraph g = build_csr(make_path(3));
  const std::string s = summarize(g);
  EXPECT_NE(s.find("|V|=3"), std::string::npos);
  EXPECT_NE(s.find("|E|=4"), std::string::npos);
}

}  // namespace
}  // namespace bfsx::graph
