// Unit tests for the online successive-refinement tuner.
#include "core/online_tuner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "graph/builder.h"
#include "graph/graph_stats.h"
#include "graph/rmat.h"

namespace bfsx::core {
namespace {

TEST(OnlineTuner, FindsMinimumOfSmoothSurface) {
  // Cost is minimised at (M, N) = (40, 15); a few probe rounds must get
  // close in log space.
  auto oracle = [](const HybridPolicy& p) {
    const double dm = std::log(p.m / 40.0);
    const double dn = std::log(p.n / 15.0);
    return 1.0 + dm * dm + dn * dn;
  };
  OnlineTunerOptions opts;
  opts.probes_per_round = 16;
  opts.rounds = 4;
  OnlineTuner tuner(opts);
  const TunedPolicy best = tuner.tune(oracle);
  EXPECT_EQ(tuner.probes_used(), 64);
  EXPECT_LT(best.seconds, 1.35);  // within the central basin
  EXPECT_GT(best.policy.m, 10.0);
  EXPECT_LT(best.policy.m, 160.0);
}

TEST(OnlineTuner, IsDeterministicUnderSeed) {
  auto oracle = [](const HybridPolicy& p) { return p.m + p.n; };
  OnlineTuner a;
  OnlineTuner b;
  const TunedPolicy ra = a.tune(oracle);
  const TunedPolicy rb = b.tune(oracle);
  EXPECT_EQ(ra.policy, rb.policy);
  EXPECT_DOUBLE_EQ(ra.seconds, rb.seconds);
}

TEST(OnlineTuner, ProbesStayInValidRange) {
  OnlineTuner tuner;
  while (!tuner.done()) {
    const HybridPolicy p = tuner.next_probe();
    EXPECT_GE(p.m, 1.0);
    EXPECT_LE(p.m, 300.0);
    EXPECT_GE(p.n, 1.0);
    EXPECT_LE(p.n, 300.0);
    EXPECT_NO_THROW(p.validate());
    tuner.record(p, p.m);  // arbitrary deterministic cost
  }
  EXPECT_NO_THROW(tuner.best());
}

TEST(OnlineTuner, IncrementalInterfaceGuards) {
  OnlineTuner tuner;
  EXPECT_THROW(tuner.best(), std::logic_error);
  while (!tuner.done()) tuner.record(tuner.next_probe(), 1.0);
  EXPECT_THROW(tuner.next_probe(), std::logic_error);
  EXPECT_THROW(tuner.record({10, 10}, 1.0), std::logic_error);
}

TEST(OnlineTuner, RejectsBadOptionsAndCosts) {
  OnlineTunerOptions bad;
  bad.probes_per_round = 1;
  EXPECT_THROW(OnlineTuner{bad}, std::invalid_argument);
  OnlineTuner tuner;
  const HybridPolicy p = tuner.next_probe();
  EXPECT_THROW(tuner.record(p, std::nan("")), std::invalid_argument);
  EXPECT_THROW(tuner.record(p, -1.0), std::invalid_argument);
}

TEST(OnlineTuner, ApproachesExhaustiveOnRealTrace) {
  graph::RmatParams gp;
  gp.scale = 12;
  const graph::CsrGraph g = graph::build_csr(graph::generate_rmat(gp));
  const LevelTrace trace =
      build_level_trace(g, graph::sample_roots(g, 1, 3)[0]);
  const sim::ArchSpec gpu = sim::make_kepler_gpu();
  const CandidateSweep sweep =
      sweep_single(trace, gpu, SwitchCandidates::paper_grid());

  OnlineTunerOptions opts;
  opts.probes_per_round = 12;
  opts.rounds = 4;
  OnlineTuner tuner(opts);
  const TunedPolicy found = tuner.tune([&](const HybridPolicy& p) {
    return replay_single(trace, gpu, p);
  });
  // 48 probes should land within 25% of the 1,000-candidate oracle.
  EXPECT_LE(found.seconds, sweep.best_seconds() * 1.25);
}

}  // namespace
}  // namespace bfsx::core
