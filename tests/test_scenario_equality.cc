// Cross-representation equality: each implicit scenario, materialized
// into a CsrGraph, must traverse identically to the implicit view —
// same distances, valid parents, and the same per-level |V|cq / |E|cq /
// next counters (which are properties of the level sets, not of the
// representation). This is the acceptance gate for the GraphView
// refactor's implicit-graph half; the CSR half is pinned by
// test_graph_view and test_csr_golden_trace.
#include <gtest/gtest.h>

#include <variant>
#include <vector>

#include "bfs/drivers.h"
#include "bfs/validate.h"
#include "graph/builder.h"
#include "graph/scenario.h"
#include "graph/view.h"
#include "graph500/engine_registry.h"
#include "graph500/scenario_engine.h"

namespace bfsx::graph {
namespace {

/// Distances and set-determined per-level counters must match exactly
/// between the implicit view and its materialized CSR; parents must be
/// valid tree edges on both. `compare_bu_scans` additionally pins the
/// bottom-up scan counts, which depend on predecessor enumeration
/// order — exact only when the view enumerates ascending ids (grid).
template <typename V>
void expect_representation_equality(const V& view, bool compare_bu_scans) {
  const CsrGraph csr = build_csr(materialize(view));
  ASSERT_EQ(csr.num_vertices(), view.num_vertices());
  ASSERT_EQ(csr.num_edges(), view.num_edges());

  for (const vid_t root : sample_view_roots(view, 3, 77)) {
    // Serial oracle: distances must be identical cell for cell.
    const bfs::BfsResult ref = bfs::run_serial(csr, root);
    const bfs::BfsResult imp = bfs::run_serial(view, root);
    EXPECT_EQ(ref.level, imp.level) << "root " << root;
    EXPECT_EQ(ref.reached, imp.reached);
    EXPECT_EQ(ref.edges_in_component, imp.edges_in_component);

    // Parallel kernels on the view: distances match the CSR oracle and
    // every parent is a genuine tree edge (checked on the CSR).
    bfs::TraversalLog view_td;
    bfs::TraversalLog view_bu;
    const bfs::BfsResult td = bfs::run_top_down(view, root, &view_td);
    const bfs::BfsResult bu = bfs::run_bottom_up(view, root, &view_bu);
    EXPECT_TRUE(bfs::same_levels(ref, td)) << "root " << root;
    EXPECT_TRUE(bfs::same_levels(ref, bu)) << "root " << root;
    EXPECT_TRUE(bfs::validate_bfs(view, root, td).ok);
    EXPECT_TRUE(bfs::validate_bfs(csr, root, td).ok);
    EXPECT_TRUE(bfs::validate_bfs(csr, root, bu).ok);

    // The same kernels on the materialized CSR: per-level counters are
    // set properties, so they must be bit-equal across representations.
    bfs::TraversalLog csr_td;
    bfs::TraversalLog csr_bu;
    (void)bfs::run_top_down(csr, root, &csr_td);
    (void)bfs::run_bottom_up(csr, root, &csr_bu);
    ASSERT_EQ(view_td.levels.size(), csr_td.levels.size()) << root;
    for (std::size_t i = 0; i < csr_td.levels.size(); ++i) {
      EXPECT_EQ(view_td.levels[i].frontier_vertices,
                csr_td.levels[i].frontier_vertices)
          << "level " << i;
      EXPECT_EQ(view_td.levels[i].frontier_edges,
                csr_td.levels[i].frontier_edges)
          << "level " << i;
      EXPECT_EQ(view_td.levels[i].next_vertices,
                csr_td.levels[i].next_vertices)
          << "level " << i;
    }
    ASSERT_EQ(view_bu.levels.size(), csr_bu.levels.size()) << root;
    for (std::size_t i = 0; i < csr_bu.levels.size(); ++i) {
      EXPECT_EQ(view_bu.levels[i].frontier_vertices,
                csr_bu.levels[i].frontier_vertices)
          << "level " << i;
      EXPECT_EQ(view_bu.levels[i].frontier_edges,
                csr_bu.levels[i].frontier_edges)
          << "level " << i;
      EXPECT_EQ(view_bu.levels[i].next_vertices,
                csr_bu.levels[i].next_vertices)
          << "level " << i;
      if (compare_bu_scans) {
        EXPECT_EQ(view_bu.levels[i].bottom_up_scanned,
                  csr_bu.levels[i].bottom_up_scanned)
            << "level " << i;
      }
    }
  }
}

TEST(ScenarioEquality, OpenGridMatchesMaterializedCsr) {
  GridSpec spec;
  spec.width = 24;
  spec.height = 17;
  // Grid neighbours are enumerated in ascending id order — the same
  // order as sorted CSR rows — so even the order-sensitive bottom-up
  // scan counts must agree.
  expect_representation_equality(GridWorld(spec), /*compare_bu_scans=*/true);
}

TEST(ScenarioEquality, WalledGridMatchesMaterializedCsr) {
  GridSpec spec;
  spec.width = 20;
  spec.height = 20;
  spec.wall_density = 0.3;
  spec.wall_seed = 13;
  expect_representation_equality(GridWorld(spec), /*compare_bu_scans=*/true);
}

TEST(ScenarioEquality, MooreGridMatchesMaterializedCsr) {
  GridSpec spec;
  spec.width = 13;
  spec.height = 11;
  spec.connectivity = 8;
  expect_representation_equality(GridWorld(spec), /*compare_bu_scans=*/true);
}

TEST(ScenarioEquality, SmallPuzzleMatchesMaterializedCsr) {
  // N-puzzle successors come in move order (N, W, E, S), not ascending
  // id order, so bottom-up scan counts are representation-specific;
  // everything set-determined must still match.
  expect_representation_equality(NPuzzleSpace(NPuzzleSpec{3, 2}),
                                 /*compare_bu_scans=*/false);
}

TEST(ScenarioEquality, EightPuzzleMatchesMaterializedCsr) {
  expect_representation_equality(NPuzzleSpace(NPuzzleSpec{3, 3}),
                                 /*compare_bu_scans=*/false);
}

TEST(ScenarioRunner, SerialAndParallelRootsAgree) {
  const Scenario s = parse_scenario("grid:32x32:wall-density=0.15:wall-seed=5");
  const graph500::EngineRegistry registry =
      graph500::EngineRegistry::with_builtin_engines();
  const graph500::ScenarioBfsEngine engine =
      registry.make_scenario_engine("native-hybrid", graph500::EngineConfig{});

  graph500::RunnerOptions opts;
  opts.num_roots = 8;
  const graph500::BenchmarkResult serial =
      graph500::run_scenario_benchmark(s.graph, engine, opts);
  opts.batch_mode = graph500::BatchMode::kParallelRoots;
  const graph500::BenchmarkResult parallel =
      graph500::run_scenario_benchmark(s.graph, engine, opts);

  ASSERT_EQ(serial.runs.size(), parallel.runs.size());
  EXPECT_EQ(serial.validation_failures, 0);
  EXPECT_EQ(parallel.validation_failures, 0);
  for (std::size_t i = 0; i < serial.runs.size(); ++i) {
    EXPECT_EQ(serial.runs[i].root, parallel.runs[i].root) << i;
    EXPECT_EQ(serial.runs[i].reached, parallel.runs[i].reached) << i;
    EXPECT_EQ(serial.runs[i].edges, parallel.runs[i].edges) << i;
  }
}

TEST(ScenarioRunner, ExplicitRootsAreRangeCheckedAndMsbfsRejected) {
  const Scenario s = parse_scenario("grid:8x8");
  const graph500::EngineRegistry registry =
      graph500::EngineRegistry::with_builtin_engines();
  const graph500::ScenarioBfsEngine engine =
      registry.make_scenario_engine("native-td", graph500::EngineConfig{});

  graph500::RunnerOptions opts;
  opts.roots = {0, 63};
  const graph500::BenchmarkResult res =
      graph500::run_scenario_benchmark(s.graph, engine, opts);
  ASSERT_EQ(res.runs.size(), 2u);
  EXPECT_EQ(res.runs[0].root, 0);
  EXPECT_EQ(res.runs[1].root, 63);
  EXPECT_EQ(res.runs[0].reached, 64);

  opts.roots = {64};
  EXPECT_THROW((void)graph500::run_scenario_benchmark(s.graph, engine, opts),
               std::invalid_argument);
  opts.roots = {0};
  opts.batch_mode = graph500::BatchMode::kMsBfs;
  EXPECT_THROW((void)graph500::run_scenario_benchmark(s.graph, engine, opts),
               std::invalid_argument);
}

TEST(ScenarioEngines, EveryScenarioCapableEngineReachesTheComponent) {
  const Scenario grid = parse_scenario("grid:16x16");
  const Scenario puzzle = parse_scenario("npuzzle:2x2");
  const graph500::EngineRegistry registry =
      graph500::EngineRegistry::with_builtin_engines();
  const std::vector<std::string> names = registry.scenario_names();
  ASSERT_EQ(names.size(), 3u);
  for (const std::string& name : names) {
    const graph500::ScenarioBfsEngine engine =
        registry.make_scenario_engine(name, graph500::EngineConfig{});
    const graph500::TimedBfs on_grid = engine(grid.graph, 0);
    EXPECT_EQ(on_grid.result.reached, 256) << name;
    const graph500::TimedBfs on_puzzle = engine(puzzle.graph, 0);
    EXPECT_EQ(on_puzzle.result.reached, 12) << name;
    EXPECT_TRUE(std::visit(
        [&on_puzzle](const auto& v) {
          return bfs::validate_bfs(v, 0, on_puzzle.result).ok;
        },
        puzzle.graph))
        << name;
  }
}

}  // namespace
}  // namespace bfsx::graph
