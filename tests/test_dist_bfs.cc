// Tests for the distributed-memory BFS simulation (src/dist): distance
// exactness against the reference traversal, BSP accounting, and
// strong-scaling behaviour of the modelled time.
#include "dist/dist_bfs.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "bfs/validate.h"
#include "core/adaptive_bfs.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph_stats.h"
#include "graph/rmat.h"
#include "graph500/reference_bfs.h"

namespace bfsx::dist {
namespace {

using graph::CsrGraph;
using graph::vid_t;

CsrGraph rmat_graph(int scale, int edgefactor, std::uint64_t seed = 2014) {
  graph::RmatParams p;
  p.scale = scale;
  p.edgefactor = edgefactor;
  p.seed = seed;
  return graph::build_csr(graph::generate_rmat(p));
}

CsrGraph directed_er_graph() {
  graph::BuildOptions opts;
  opts.symmetrize = false;
  return graph::build_directed_csr(graph::make_erdos_renyi(600, 4'000, 99),
                                   opts);
}

/// Distances must match the reference BFS exactly for every cluster
/// size and both partition strategies; parents must validate (their
/// identity can differ — parallel claims race benignly).
void expect_exact(const CsrGraph& g, vid_t root) {
  const bfs::BfsResult ref = graph500::reference_bfs(g, root);
  for (const graph::PartitionStrategy strategy :
       {graph::PartitionStrategy::kBlock,
        graph::PartitionStrategy::kDegreeBalanced}) {
    for (int devices = 1; devices <= 8; ++devices) {
      const sim::Cluster cluster =
          sim::Cluster::homogeneous(sim::make_sandy_bridge_cpu(), devices);
      DistBfsOptions opts;
      opts.strategy = strategy;
      const DistBfsRun run = run_dist_bfs(g, root, cluster, opts);
      ASSERT_EQ(run.result.level, ref.level)
          << "strategy=" << graph::to_string(strategy)
          << " devices=" << devices;
      EXPECT_EQ(run.result.reached, ref.reached);
      EXPECT_EQ(run.result.edges_in_component, ref.edges_in_component);
      const bfs::ValidationReport rep = bfs::validate_bfs(g, root, run.result);
      EXPECT_TRUE(rep.ok) << rep.error << " strategy="
                          << graph::to_string(strategy)
                          << " devices=" << devices;
    }
  }
}

TEST(DistBfsExactness, RmatGraph) {
  const CsrGraph g = rmat_graph(11, 8);
  expect_exact(g, graph::sample_roots(g, 1, 7)[0]);
}

TEST(DistBfsExactness, GridGraph) {
  expect_exact(graph::build_csr(graph::make_grid(20, 30)), 0);
}

TEST(DistBfsExactness, LollipopGraph) {
  expect_exact(graph::build_csr(graph::make_lollipop(40, 60)), 5);
}

TEST(DistBfsExactness, UnreachableComponentStaysUnreached) {
  const CsrGraph g = graph::build_csr(graph::make_two_cliques(40));
  expect_exact(g, 0);
  const DistBfsRun run = run_dist_bfs(
      g, 0, sim::Cluster::homogeneous(sim::make_sandy_bridge_cpu(), 4));
  EXPECT_EQ(run.result.reached, 20);
  EXPECT_EQ(run.result.level[25], -1);
}

TEST(DistBfsExactness, DirectedGraph) {
  expect_exact(directed_er_graph(), 0);
}

TEST(DistBfs, SingleDeviceMatchesSingleArchCombination) {
  // P = 1 degenerates to the single-device combination: no comm, the
  // same per-level direction choices, the same modelled seconds.
  const CsrGraph g = rmat_graph(12, 16);
  const vid_t root = graph::sample_roots(g, 1, 3)[0];
  const sim::Device device{sim::make_sandy_bridge_cpu()};
  const core::HybridPolicy policy{14.0, 24.0};

  const core::CombinationRun single =
      core::run_combination(g, root, device, policy);
  DistBfsOptions opts;
  opts.policy = policy;
  const DistBfsRun dist = run_dist_bfs(
      g, root, sim::Cluster{{device}, sim::InterconnectSpec{}}, opts);

  EXPECT_EQ(dist.comm_seconds, 0.0);
  ASSERT_EQ(dist.levels.size(), single.levels.size());
  for (std::size_t i = 0; i < dist.levels.size(); ++i) {
    EXPECT_EQ(dist.levels[i].direction, single.levels[i].outcome.direction);
  }
  EXPECT_NEAR(dist.seconds, single.seconds, single.seconds * 1e-9);
  EXPECT_EQ(dist.direction_switches, single.direction_switches);
}

TEST(DistBfs, AggregatedCountersReproduceGlobalDirectionSequence) {
  // The Buluç–Beamer rule sums per-partition counters before deciding,
  // so every cluster size must take the same per-level branches as the
  // single-device run.
  const CsrGraph g = rmat_graph(12, 16);
  const vid_t root = graph::sample_roots(g, 1, 3)[0];
  const core::HybridPolicy policy{14.0, 24.0};
  const core::CombinationRun single = core::run_combination(
      g, root, sim::Device{sim::make_sandy_bridge_cpu()}, policy);

  for (const int devices : {2, 5, 8}) {
    DistBfsOptions opts;
    opts.policy = policy;
    const DistBfsRun run = run_dist_bfs(
        g, root,
        sim::Cluster::homogeneous(sim::make_sandy_bridge_cpu(), devices),
        opts);
    ASSERT_EQ(run.levels.size(), single.levels.size());
    for (std::size_t i = 0; i < run.levels.size(); ++i) {
      EXPECT_EQ(run.levels[i].direction, single.levels[i].outcome.direction);
      EXPECT_EQ(run.levels[i].frontier_vertices,
                single.levels[i].outcome.frontier_vertices);
      EXPECT_EQ(run.levels[i].frontier_edges,
                single.levels[i].outcome.frontier_edges);
    }
  }
}

TEST(DistBfs, ModelledTimeMonotoneNonIncreasingOverDevices) {
  // Strong scaling on a frontier-heavy graph: more devices must never
  // model slower, and communication must be charged whenever there is
  // more than one device. The graph needs enough vertices that the
  // bottom-up candidate sweep (|V| * bu_vertex_ns per level) dominates
  // the fixed per-level overhead — otherwise there is nothing for extra
  // devices to parallelise and comm makes the cluster strictly slower.
  const CsrGraph g = rmat_graph(19, 16);
  const vid_t root = graph::sample_roots(g, 1, 5)[0];
  DistBfsOptions opts;
  opts.strategy = graph::PartitionStrategy::kDegreeBalanced;

  double prev = 0.0;
  for (const int devices : {1, 2, 4}) {
    const DistBfsRun run =
        run_dist_bfs(g, root, sim::make_paper_cluster(devices), opts);
    if (devices == 1) {
      EXPECT_EQ(run.comm_seconds, 0.0);
    } else {
      EXPECT_GT(run.comm_seconds, 0.0);
      for (const DistLevelOutcome& lvl : run.levels) {
        EXPECT_GT(lvl.comm_seconds, 0.0);
      }
      EXPECT_LE(run.seconds, prev);
    }
    prev = run.seconds;
  }
}

TEST(DistBfs, PerLevelAccountingIsConsistent) {
  const CsrGraph g = rmat_graph(11, 16);
  const vid_t root = graph::sample_roots(g, 1, 9)[0];
  const sim::Cluster cluster =
      sim::Cluster::homogeneous(sim::make_sandy_bridge_cpu(), 4);
  const DistBfsRun run = run_dist_bfs(g, root, cluster);

  double compute = 0.0;
  double comm = 0.0;
  vid_t discovered = 1;  // the root
  for (const DistLevelOutcome& lvl : run.levels) {
    ASSERT_EQ(lvl.device_compute_seconds.size(), 4u);
    EXPECT_GE(lvl.balance, 1.0);
    double worst = 0.0;
    for (const double s : lvl.device_compute_seconds) {
      worst = std::max(worst, s);
    }
    EXPECT_DOUBLE_EQ(lvl.compute_seconds, worst);
    compute += lvl.compute_seconds;
    comm += lvl.comm_seconds;
    discovered += lvl.next_vertices;
  }
  EXPECT_DOUBLE_EQ(run.compute_seconds, compute);
  EXPECT_DOUBLE_EQ(run.comm_seconds, comm);
  EXPECT_NEAR(run.seconds, compute + comm, 1e-15);
  EXPECT_EQ(discovered, run.result.reached);
  ASSERT_EQ(run.device_graph_bytes.size(), 4u);
  for (const std::size_t b : run.device_graph_bytes) EXPECT_GT(b, 0u);
}

TEST(DistBfs, HeterogeneousClusterRunsExactly) {
  const CsrGraph g = rmat_graph(11, 16);
  const vid_t root = graph::sample_roots(g, 1, 11)[0];
  std::vector<sim::Device> devices;
  devices.emplace_back(sim::make_sandy_bridge_cpu());
  devices.emplace_back(sim::make_kepler_gpu());
  devices.emplace_back(sim::make_knights_corner_mic());
  const sim::Cluster cluster{std::move(devices), sim::InterconnectSpec{}};

  const bfs::BfsResult ref = graph500::reference_bfs(g, root);
  const DistBfsRun run = run_dist_bfs(g, root, cluster);
  EXPECT_EQ(run.result.level, ref.level);
  EXPECT_GT(run.comm_seconds, 0.0);
}

TEST(DistBfs, RejectsBadInputs) {
  const CsrGraph g = rmat_graph(8, 8);
  const sim::Cluster cluster =
      sim::Cluster::homogeneous(sim::make_sandy_bridge_cpu(), 2);
  EXPECT_THROW(run_dist_bfs(g, -1, cluster), std::invalid_argument);
  EXPECT_THROW(run_dist_bfs(g, g.num_vertices(), cluster),
               std::invalid_argument);
  DistBfsOptions opts;
  opts.policy = core::HybridPolicy{0.5, 0.5};
  EXPECT_THROW(run_dist_bfs(g, 0, cluster, opts), std::invalid_argument);
  EXPECT_THROW(run_dist_bfs(CsrGraph{}, 0, cluster), std::invalid_argument);
}

}  // namespace
}  // namespace bfsx::dist
