// Unit tests for the contract-check tiers (check/contract.h), the
// multi-failure CheckReport collector, and the cross-engine counter
// agreement checker.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/agreement.h"
#include "check/contract.h"
#include "check/report.h"

namespace bfsx::check {
namespace {

// ---- BFSX_CHECK ---------------------------------------------------------

TEST(Contract, PassingCheckIsSilent) {
  EXPECT_NO_THROW(BFSX_CHECK(1 + 1 == 2));
  EXPECT_NO_THROW(BFSX_CHECK_EQ(4, 4) << "unused context");
}

TEST(Contract, FailingCheckThrowsContractViolation) {
  EXPECT_THROW(BFSX_CHECK(false), ContractViolation);
}

TEST(Contract, FailureMessageCarriesExpressionAndLocation) {
  try {
    BFSX_CHECK(2 < 1) << "streamed context " << 42;
    FAIL() << "BFSX_CHECK did not throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("BFSX_CHECK failed"), std::string::npos) << what;
    EXPECT_NE(what.find("2 < 1"), std::string::npos) << what;
    EXPECT_NE(what.find("test_check_contract.cc"), std::string::npos) << what;
    EXPECT_NE(what.find("streamed context 42"), std::string::npos) << what;
  }
}

TEST(Contract, ComparisonFormsPrintBothOperands) {
  const int lhs = 3;
  const int rhs = 7;
  try {
    BFSX_CHECK_EQ(lhs, rhs);
    FAIL() << "BFSX_CHECK_EQ did not throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("lhs == rhs"), std::string::npos) << what;
    EXPECT_NE(what.find("(3 vs 7)"), std::string::npos) << what;
  }
}

TEST(Contract, AllComparisonFormsEnforceTheirOperator) {
  EXPECT_NO_THROW(BFSX_CHECK_NE(1, 2));
  EXPECT_THROW(BFSX_CHECK_NE(2, 2), ContractViolation);
  EXPECT_NO_THROW(BFSX_CHECK_LT(1, 2));
  EXPECT_THROW(BFSX_CHECK_LT(2, 2), ContractViolation);
  EXPECT_NO_THROW(BFSX_CHECK_LE(2, 2));
  EXPECT_THROW(BFSX_CHECK_LE(3, 2), ContractViolation);
  EXPECT_NO_THROW(BFSX_CHECK_GT(2, 1));
  EXPECT_THROW(BFSX_CHECK_GT(2, 2), ContractViolation);
  EXPECT_NO_THROW(BFSX_CHECK_GE(2, 2));
  EXPECT_THROW(BFSX_CHECK_GE(1, 2), ContractViolation);
}

TEST(Contract, ContextStreamOnlyEvaluatedOnFailure) {
  int calls = 0;
  auto expensive = [&calls]() {
    ++calls;
    return std::string("ctx");
  };
  BFSX_CHECK(true) << expensive();
  EXPECT_EQ(calls, 0);
  EXPECT_THROW(BFSX_CHECK(false) << expensive(), ContractViolation);
  EXPECT_EQ(calls, 1);
}

// ---- BFSX_DCHECK --------------------------------------------------------

TEST(Contract, DcheckMatchesItsCompileTimeActivation) {
#if BFSX_DCHECK_ACTIVE
  EXPECT_THROW(BFSX_DCHECK(false), ContractViolation);
  EXPECT_THROW(BFSX_DCHECK_EQ(1, 2), ContractViolation);
#else
  EXPECT_NO_THROW(BFSX_DCHECK(false));
  EXPECT_NO_THROW(BFSX_DCHECK_EQ(1, 2));
#endif
  EXPECT_NO_THROW(BFSX_DCHECK(true));
}

// ---- kill switch --------------------------------------------------------

TEST(Contract, ScopedDisableChecksSuppressesAndRestores) {
  EXPECT_TRUE(checks_enabled());
  {
    ScopedDisableChecks off;
    EXPECT_FALSE(checks_enabled());
    EXPECT_NO_THROW(BFSX_CHECK(false) << "suppressed");
    EXPECT_NO_THROW(BFSX_CHECK_EQ(1, 2));
  }
  EXPECT_TRUE(checks_enabled());
  EXPECT_THROW(BFSX_CHECK(false), ContractViolation);
}

// ---- CheckReport --------------------------------------------------------

TEST(Report, StartsOk) {
  CheckReport report;
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(static_cast<bool>(report));
  EXPECT_EQ(report.total_failures(), 0u);
  EXPECT_EQ(report.to_string(), "ok");
  EXPECT_NO_THROW(report.throw_if_failed("context"));
}

TEST(Report, CollectsNumberedFailuresUpToCap) {
  CheckReport report(3);
  for (int i = 0; i < 5; ++i) {
    report.failf() << "failure number " << i;
  }
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.total_failures(), 5u);
  EXPECT_EQ(report.failures().size(), 3u);
  EXPECT_FALSE(report.wants_more());
  const std::string s = report.to_string();
  EXPECT_NE(s.find("5 failure(s)"), std::string::npos) << s;
  EXPECT_NE(s.find("[1] failure number 0"), std::string::npos) << s;
  EXPECT_NE(s.find("[3] failure number 2"), std::string::npos) << s;
  EXPECT_NE(s.find("2 more dropped"), std::string::npos) << s;
}

TEST(Report, ThrowIfFailedNamesTheContext) {
  CheckReport report;
  report.fail("broken row 7");
  try {
    report.throw_if_failed("CSR invariants");
    FAIL() << "throw_if_failed did not throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("CSR invariants"), std::string::npos) << what;
    EXPECT_NE(what.find("broken row 7"), std::string::npos) << what;
  }
}

// ---- counter agreement --------------------------------------------------

std::vector<LevelCounters> sample_trace() {
  return {{0, 1, 3, 2}, {1, 2, 10, 4}, {2, 4, 6, 0}};
}

TEST(Agreement, IdenticalTracesAgree) {
  CheckReport report;
  EXPECT_TRUE(compare_level_counters(sample_trace(), sample_trace(), "a", "b",
                                     report));
  EXPECT_TRUE(report.ok());
  EXPECT_NO_THROW(
      require_counter_agreement(sample_trace(), sample_trace(), "a", "b"));
}

TEST(Agreement, DepthMismatchReported) {
  auto longer = sample_trace();
  longer.push_back({3, 1, 1, 0});
  CheckReport report;
  EXPECT_FALSE(compare_level_counters(sample_trace(), longer, "td", "bu",
                                      report));
  EXPECT_FALSE(report.ok());
  const std::string s = report.to_string();
  EXPECT_NE(s.find("td"), std::string::npos) << s;
  EXPECT_NE(s.find("bu"), std::string::npos) << s;
}

TEST(Agreement, PerFieldMismatchNamesLevelAndField) {
  auto corrupt = sample_trace();
  corrupt[1].frontier_edges = 11;
  CheckReport report;
  EXPECT_FALSE(compare_level_counters(sample_trace(), corrupt, "td", "bu",
                                      report));
  const std::string s = report.to_string();
  EXPECT_NE(s.find("|E|cq"), std::string::npos) << s;
  EXPECT_NE(s.find("10"), std::string::npos) << s;
  EXPECT_NE(s.find("11"), std::string::npos) << s;
  EXPECT_THROW(require_counter_agreement(sample_trace(), corrupt, "td", "bu"),
               ContractViolation);
}

TEST(Agreement, EveryMismatchedLevelReported) {
  auto corrupt = sample_trace();
  corrupt[0].next_vertices += 1;
  corrupt[2].frontier_vertices += 1;
  CheckReport report;
  EXPECT_FALSE(compare_level_counters(sample_trace(), corrupt, "td", "bu",
                                      report));
  EXPECT_GE(report.total_failures(), 2u);
}

}  // namespace
}  // namespace bfsx::check
