// Unit tests for k-NN regression.
#include "ml/knn.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/prng.h"
#include "ml/metrics.h"

namespace bfsx::ml {
namespace {

TEST(Knn, ExactTrainingPointReturnsItsTarget) {
  Dataset d;
  d.add({0.0, 0.0}, 1.0);
  d.add({1.0, 0.0}, 2.0);
  d.add({0.0, 1.0}, 3.0);
  const KnnModel m = KnnModel::fit(d, {.k = 2});
  EXPECT_DOUBLE_EQ(m.predict(std::vector<double>{1.0, 0.0}), 2.0);
}

TEST(Knn, UniformWeightsAverageNeighbours) {
  Dataset d;
  d.add({0.0}, 10.0);
  d.add({1.0}, 20.0);
  d.add({100.0}, 1000.0);
  const KnnModel m = KnnModel::fit(d, {.k = 2, .distance_weighted = false});
  // Query near 0.5: the two closest targets are 10 and 20.
  EXPECT_DOUBLE_EQ(m.predict(std::vector<double>{0.4}), 15.0);
}

TEST(Knn, DistanceWeightingPullsTowardCloserNeighbour) {
  Dataset d;
  d.add({0.0}, 0.0);
  d.add({1.0}, 100.0);
  const KnnModel m = KnnModel::fit(d, {.k = 2, .distance_weighted = true});
  const double near_zero = m.predict(std::vector<double>{0.1});
  EXPECT_LT(near_zero, 50.0);
  EXPECT_GT(near_zero, 0.0);
}

TEST(Knn, KLargerThanDatasetClamps) {
  Dataset d;
  d.add({0.0}, 1.0);
  d.add({1.0}, 3.0);
  const KnnModel m = KnnModel::fit(d, {.k = 10, .distance_weighted = false});
  EXPECT_DOUBLE_EQ(m.predict(std::vector<double>{0.5}), 2.0);
}

TEST(Knn, FitsSmoothFunctionReasonably) {
  graph::Xoshiro256ss rng(5);
  Dataset train;
  Dataset test;
  for (int i = 0; i < 400; ++i) {
    const double x = rng.next_double() * 6;
    (i < 300 ? train : test).add({x}, x * x);
  }
  const KnnModel m = KnnModel::fit(train, {.k = 3});
  EXPECT_GT(r_squared(test.y, m.predict_all(test)), 0.98);
}

TEST(Knn, RejectsBadParams) {
  Dataset d;
  d.add({1.0}, 1.0);
  EXPECT_THROW(KnnModel::fit(d, {.k = 0}), std::invalid_argument);
  EXPECT_THROW(KnnModel::fit(Dataset{}), std::invalid_argument);
}

}  // namespace
}  // namespace bfsx::ml
