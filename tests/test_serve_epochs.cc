// serve::GraphEpochs: snapshot isolation, retirement, vertex-set
// growth, and the incremental delta-publish policy (overlay sharing,
// last-op-wins canonicalisation, compaction, removals).
#include "serve/epochs.h"

#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "graph/builder.h"
#include "graph/edge_list.h"

namespace bfsx::serve {
namespace {

/// 0-1-2-3 path.
graph::EdgeList path4() {
  graph::EdgeList el;
  el.num_vertices = 4;
  el.edges = {{0, 1}, {1, 2}, {2, 3}};
  return el;
}

TEST(GraphEpochs, EpochZeroMatchesDirectBuild) {
  GraphEpochs epochs(path4());
  EXPECT_EQ(epochs.current_epoch(), 0u);
  EXPECT_EQ(epochs.current_num_vertices(), 4);
  EXPECT_EQ(epochs.live_epochs(), 1u);

  const GraphEpochs::Pin pin = epochs.pin();
  EXPECT_EQ(pin.epoch(), 0u);
  const graph::CsrGraph direct = graph::build_csr(path4());
  EXPECT_EQ(pin.graph().num_vertices(), direct.num_vertices());
  EXPECT_EQ(pin.graph().num_edges(), direct.num_edges());
}

TEST(GraphEpochs, BufferedInsertsInvisibleUntilPublish) {
  GraphEpochs epochs(path4());
  const graph::eid_t before = epochs.pin().graph().num_edges();
  epochs.buffer_insert(0, 3);
  EXPECT_EQ(epochs.pending_inserts(), 1u);
  EXPECT_EQ(epochs.pin().graph().num_edges(), before);
  EXPECT_EQ(epochs.current_epoch(), 0u);

  const std::uint64_t next = epochs.publish();
  EXPECT_EQ(next, 1u);
  EXPECT_EQ(epochs.pending_inserts(), 0u);
  EXPECT_GT(epochs.pin().graph().num_edges(), before);
}

TEST(GraphEpochs, PinnedReaderKeepsItsSnapshotAcrossPublish) {
  GraphEpochs epochs(path4());
  std::optional<GraphEpochs::Pin> old = epochs.pin();
  const graph::eid_t old_edges = old->graph().num_edges();

  epochs.buffer_insert(0, 2);
  epochs.publish();

  // The old pin still reads the pre-publish graph...
  EXPECT_EQ(old->epoch(), 0u);
  EXPECT_EQ(old->graph().num_edges(), old_edges);
  // ...and keeps its record alive.
  EXPECT_EQ(epochs.live_epochs(), 2u);
  EXPECT_EQ(epochs.retired_epochs(), 0u);

  // Dropping the last pin of the superseded epoch retires it.
  old.reset();
  EXPECT_EQ(epochs.live_epochs(), 1u);
  EXPECT_EQ(epochs.retired_epochs(), 1u);
}

TEST(GraphEpochs, UnpinnedSupersededEpochRetiresAtPublish) {
  GraphEpochs epochs(path4());
  epochs.buffer_insert(1, 3);
  epochs.publish();  // epoch 0 had no pins: retired immediately
  EXPECT_EQ(epochs.live_epochs(), 1u);
  EXPECT_EQ(epochs.retired_epochs(), 1u);
}

TEST(GraphEpochs, PublishGrowsVertexSet) {
  GraphEpochs epochs(path4());
  epochs.buffer_insert(3, 6);  // vertex 6 does not exist yet
  EXPECT_EQ(epochs.current_num_vertices(), 4);
  epochs.publish();
  EXPECT_EQ(epochs.current_num_vertices(), 7);
}

TEST(GraphEpochs, PublishWithNothingPendingIsValid) {
  GraphEpochs epochs(path4());
  const graph::eid_t edges = epochs.pin().graph().num_edges();
  EXPECT_EQ(epochs.publish(), 1u);
  EXPECT_EQ(epochs.pin().graph().num_edges(), edges);
}

TEST(GraphEpochs, NegativeInsertThrows) {
  GraphEpochs epochs(path4());
  EXPECT_THROW(epochs.buffer_insert(-1, 2), std::invalid_argument);
  EXPECT_THROW(epochs.buffer_insert(0, -5), std::invalid_argument);
}

TEST(GraphEpochs, MovedPinUnpinsExactlyOnce) {
  GraphEpochs epochs(path4());
  {
    GraphEpochs::Pin a = epochs.pin();
    GraphEpochs::Pin b = std::move(a);
    GraphEpochs::Pin c = epochs.pin();
    c = std::move(b);  // move-assign releases c's own pin first
  }
  epochs.buffer_insert(0, 3);
  epochs.publish();
  // Had any pin leaked, epoch 0 would still be live.
  EXPECT_EQ(epochs.live_epochs(), 1u);
}

/// path4 is tiny: one symmetrized insert patches 2 of 4 rows, over
/// the default 0.25 fold threshold. Delta-shape tests pin a threshold
/// that never self-compacts so the overlay is observable.
EpochOptions never_compact() {
  EpochOptions opts;
  opts.compact_threshold = 2.0;
  return opts;
}

TEST(GraphEpochs, DeltaPublishSharesTheFlatBase) {
  GraphEpochs epochs(path4(), never_compact());
  const GraphEpochs::Pin flat0 = epochs.pin();
  ASSERT_FALSE(flat0.graph().is_delta());
  const graph::CsrGraph* base = flat0.graph().flat();

  epochs.buffer_insert(0, 3);
  epochs.publish();
  const GraphEpochs::Pin pin = epochs.pin();
  ASSERT_TRUE(pin.graph().is_delta());
  EXPECT_EQ(pin.graph().flat(), nullptr);
  ASSERT_NE(pin.graph().delta(), nullptr);
  // The overlay patches the epoch-0 flat CSR — same object, no copy.
  EXPECT_EQ(pin.graph().delta()->base_ptr().get(), base);
  EXPECT_EQ(pin.graph().delta()->patched_rows(), 2);  // rows 0 and 3
  EXPECT_EQ(epochs.delta_publishes(), 1u);
  EXPECT_EQ(epochs.full_publishes(), 1u);  // the initial build

  const PublishInfo info = epochs.last_publish();
  EXPECT_EQ(info.epoch, 1u);
  EXPECT_TRUE(info.delta);
  EXPECT_FALSE(info.compacted);
  EXPECT_EQ(info.raw_ops, 1u);
  EXPECT_EQ(info.applied_inserts, 1u);
  EXPECT_EQ(info.applied_removes, 0u);
  EXPECT_EQ(info.deduped_ops, 0u);
  EXPECT_EQ(info.patched_rows, 2);
  EXPECT_GE(info.seconds, 0.0);
}

TEST(GraphEpochs, DeltaPublishDisabledRestoresFullRebuilds) {
  EpochOptions opts;
  opts.delta_publish = false;
  GraphEpochs epochs(path4(), opts);
  epochs.buffer_insert(0, 2);
  epochs.publish();
  EXPECT_FALSE(epochs.pin().graph().is_delta());
  EXPECT_EQ(epochs.delta_publishes(), 0u);
  EXPECT_EQ(epochs.full_publishes(), 2u);
  EXPECT_FALSE(epochs.last_publish().delta);
  EXPECT_TRUE(epochs.last_publish().compacted);
}

TEST(GraphEpochs, CompactionThresholdFoldsWideBatches) {
  EpochOptions opts;
  opts.compact_threshold = 0.6;
  GraphEpochs epochs(path4(), opts);
  // Touch every row: 4 patched rows out of 4 >= 0.6 -> fold to flat.
  epochs.buffer_insert(0, 2);
  epochs.buffer_insert(1, 3);
  epochs.publish();
  EXPECT_FALSE(epochs.pin().graph().is_delta());
  const PublishInfo info = epochs.last_publish();
  EXPECT_FALSE(info.delta);
  EXPECT_TRUE(info.compacted);
  // The pre-fold overlay shape survives in the breakdown — it is the
  // evidence of why the publish compacted.
  EXPECT_EQ(info.patched_rows, 4);
  EXPECT_DOUBLE_EQ(info.patched_fraction, 1.0);

  // A one-row touch stays under the threshold and publishes a delta
  // against the newly compacted base.
  epochs.buffer_insert(0, 3);
  epochs.publish();
  ASSERT_TRUE(epochs.pin().graph().is_delta());
  EXPECT_EQ(epochs.pin().graph().delta()->base_ptr()->num_edges(), 10);
}

TEST(GraphEpochs, PublishFullAlwaysCompacts) {
  GraphEpochs epochs(path4(), never_compact());
  epochs.buffer_insert(0, 3);
  epochs.publish();
  ASSERT_TRUE(epochs.pin().graph().is_delta());
  const graph::eid_t edges = epochs.pin().graph().num_edges();

  EXPECT_EQ(epochs.publish_full(), 2u);
  const GraphEpochs::Pin pin = epochs.pin();
  EXPECT_FALSE(pin.graph().is_delta());
  EXPECT_EQ(pin.graph().num_edges(), edges);
  EXPECT_TRUE(epochs.last_publish().compacted);
}

TEST(GraphEpochs, BufferedRemoveDeletesTheEdge) {
  GraphEpochs epochs(path4(), never_compact());
  const graph::eid_t before = epochs.pin().graph().num_edges();
  epochs.buffer_remove(1, 2);
  EXPECT_EQ(epochs.pending_removes(), 1u);
  epochs.publish();
  const GraphEpochs::Pin pin = epochs.pin();
  EXPECT_EQ(pin.graph().num_edges(), before - 2);  // both directions
  ASSERT_TRUE(pin.graph().is_delta());
  EXPECT_FALSE(pin.graph().delta()->has_edge(1, 2));
  EXPECT_FALSE(pin.graph().delta()->has_edge(2, 1));
  EXPECT_EQ(epochs.last_publish().applied_removes, 1u);

  // Compaction reclaims the dead edge's storage in the flat rebuild.
  epochs.publish_full();
  EXPECT_EQ(epochs.pin().graph().num_edges(), before - 2);
  EXPECT_EQ(epochs.pin().graph().flat()->num_edges(), before - 2);
}

TEST(GraphEpochs, RemovingAnAbsentEdgeIsANoOp) {
  GraphEpochs epochs(path4());
  const graph::eid_t before = epochs.pin().graph().num_edges();
  epochs.buffer_remove(0, 3);
  epochs.publish();
  EXPECT_EQ(epochs.pin().graph().num_edges(), before);
  ASSERT_TRUE(epochs.pin().graph().is_delta());
  // An effective no-op must not burn a patch slot either.
  EXPECT_EQ(epochs.pin().graph().delta()->patched_rows(), 0);
}

TEST(GraphEpochs, NegativeRemoveThrows) {
  GraphEpochs epochs(path4());
  EXPECT_THROW(epochs.buffer_remove(-1, 2), std::invalid_argument);
  EXPECT_THROW(epochs.buffer_remove(0, -5), std::invalid_argument);
}

TEST(GraphEpochs, AdversarialBatchCanonicalisesLastOpWins) {
  GraphEpochs epochs(path4(), never_compact());
  const graph::eid_t before = epochs.pin().graph().num_edges();
  // Duplicate inserts of the same edge, an insert-then-remove pair,
  // and a remove-then-insert pair, all in one batch.
  epochs.buffer_insert(0, 3);
  epochs.buffer_insert(0, 3);  // dup
  epochs.buffer_insert(0, 2);
  epochs.buffer_remove(0, 2);  // cancels the insert above
  epochs.buffer_remove(1, 2);
  epochs.buffer_insert(1, 2);  // re-inserts the existing edge: no-op
  EXPECT_EQ(epochs.pending_inserts(), 4u);
  EXPECT_EQ(epochs.pending_removes(), 2u);
  epochs.publish();

  const PublishInfo info = epochs.last_publish();
  EXPECT_EQ(info.raw_ops, 6u);
  EXPECT_EQ(info.deduped_ops, 3u);  // one dup + the two superseded ops
  EXPECT_EQ(info.applied_inserts, 2u);  // (0,3) and (1,2)
  EXPECT_EQ(info.applied_removes, 1u);  // (0,2)
  const GraphEpochs::Pin pin = epochs.pin();
  ASSERT_TRUE(pin.graph().is_delta());
  EXPECT_TRUE(pin.graph().delta()->has_edge(0, 3));
  EXPECT_TRUE(pin.graph().delta()->has_edge(1, 2));
  EXPECT_FALSE(pin.graph().delta()->has_edge(0, 2));
  // Net effect: exactly one undirected edge added.
  EXPECT_EQ(pin.graph().num_edges(), before + 2);
}

TEST(GraphEpochs, ConcurrentPinnersDuringPublishes) {
  GraphEpochs epochs(path4());
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&epochs] {
      for (int i = 0; i < 200; ++i) {
        const GraphEpochs::Pin pin = epochs.pin();
        // The snapshot must be internally consistent whatever the
        // writer is doing.
        ASSERT_GE(pin.graph().num_vertices(), 4);
        ASSERT_GE(pin.graph().num_edges(), 6);  // 3 undirected edges
      }
    });
  }
  for (int i = 0; i < 20; ++i) {
    epochs.buffer_insert(0, 3);
    epochs.publish();
  }
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(epochs.current_epoch(), 20u);
  EXPECT_EQ(epochs.live_epochs(), 1u);
  EXPECT_EQ(epochs.retired_epochs(), 20u);
}

}  // namespace
}  // namespace bfsx::serve
