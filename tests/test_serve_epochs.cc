// serve::GraphEpochs: snapshot isolation, retirement, and vertex-set
// growth across publishes.
#include "serve/epochs.h"

#include <gtest/gtest.h>

#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "graph/builder.h"
#include "graph/edge_list.h"

namespace bfsx::serve {
namespace {

/// 0-1-2-3 path.
graph::EdgeList path4() {
  graph::EdgeList el;
  el.num_vertices = 4;
  el.edges = {{0, 1}, {1, 2}, {2, 3}};
  return el;
}

TEST(GraphEpochs, EpochZeroMatchesDirectBuild) {
  GraphEpochs epochs(path4());
  EXPECT_EQ(epochs.current_epoch(), 0u);
  EXPECT_EQ(epochs.current_num_vertices(), 4);
  EXPECT_EQ(epochs.live_epochs(), 1u);

  const GraphEpochs::Pin pin = epochs.pin();
  EXPECT_EQ(pin.epoch(), 0u);
  const graph::CsrGraph direct = graph::build_csr(path4());
  EXPECT_EQ(pin.graph().num_vertices(), direct.num_vertices());
  EXPECT_EQ(pin.graph().num_edges(), direct.num_edges());
}

TEST(GraphEpochs, BufferedInsertsInvisibleUntilPublish) {
  GraphEpochs epochs(path4());
  const graph::eid_t before = epochs.pin().graph().num_edges();
  epochs.buffer_insert(0, 3);
  EXPECT_EQ(epochs.pending_inserts(), 1u);
  EXPECT_EQ(epochs.pin().graph().num_edges(), before);
  EXPECT_EQ(epochs.current_epoch(), 0u);

  const std::uint64_t next = epochs.publish();
  EXPECT_EQ(next, 1u);
  EXPECT_EQ(epochs.pending_inserts(), 0u);
  EXPECT_GT(epochs.pin().graph().num_edges(), before);
}

TEST(GraphEpochs, PinnedReaderKeepsItsSnapshotAcrossPublish) {
  GraphEpochs epochs(path4());
  std::optional<GraphEpochs::Pin> old = epochs.pin();
  const graph::eid_t old_edges = old->graph().num_edges();

  epochs.buffer_insert(0, 2);
  epochs.publish();

  // The old pin still reads the pre-publish graph...
  EXPECT_EQ(old->epoch(), 0u);
  EXPECT_EQ(old->graph().num_edges(), old_edges);
  // ...and keeps its record alive.
  EXPECT_EQ(epochs.live_epochs(), 2u);
  EXPECT_EQ(epochs.retired_epochs(), 0u);

  // Dropping the last pin of the superseded epoch retires it.
  old.reset();
  EXPECT_EQ(epochs.live_epochs(), 1u);
  EXPECT_EQ(epochs.retired_epochs(), 1u);
}

TEST(GraphEpochs, UnpinnedSupersededEpochRetiresAtPublish) {
  GraphEpochs epochs(path4());
  epochs.buffer_insert(1, 3);
  epochs.publish();  // epoch 0 had no pins: retired immediately
  EXPECT_EQ(epochs.live_epochs(), 1u);
  EXPECT_EQ(epochs.retired_epochs(), 1u);
}

TEST(GraphEpochs, PublishGrowsVertexSet) {
  GraphEpochs epochs(path4());
  epochs.buffer_insert(3, 6);  // vertex 6 does not exist yet
  EXPECT_EQ(epochs.current_num_vertices(), 4);
  epochs.publish();
  EXPECT_EQ(epochs.current_num_vertices(), 7);
}

TEST(GraphEpochs, PublishWithNothingPendingIsValid) {
  GraphEpochs epochs(path4());
  const graph::eid_t edges = epochs.pin().graph().num_edges();
  EXPECT_EQ(epochs.publish(), 1u);
  EXPECT_EQ(epochs.pin().graph().num_edges(), edges);
}

TEST(GraphEpochs, NegativeInsertThrows) {
  GraphEpochs epochs(path4());
  EXPECT_THROW(epochs.buffer_insert(-1, 2), std::invalid_argument);
  EXPECT_THROW(epochs.buffer_insert(0, -5), std::invalid_argument);
}

TEST(GraphEpochs, MovedPinUnpinsExactlyOnce) {
  GraphEpochs epochs(path4());
  {
    GraphEpochs::Pin a = epochs.pin();
    GraphEpochs::Pin b = std::move(a);
    GraphEpochs::Pin c = epochs.pin();
    c = std::move(b);  // move-assign releases c's own pin first
  }
  epochs.buffer_insert(0, 3);
  epochs.publish();
  // Had any pin leaked, epoch 0 would still be live.
  EXPECT_EQ(epochs.live_epochs(), 1u);
}

TEST(GraphEpochs, ConcurrentPinnersDuringPublishes) {
  GraphEpochs epochs(path4());
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&epochs] {
      for (int i = 0; i < 200; ++i) {
        const GraphEpochs::Pin pin = epochs.pin();
        // The snapshot must be internally consistent whatever the
        // writer is doing.
        ASSERT_GE(pin.graph().num_vertices(), 4);
        ASSERT_GE(pin.graph().num_edges(), 6);  // 3 undirected edges
      }
    });
  }
  for (int i = 0; i < 20; ++i) {
    epochs.buffer_insert(0, 3);
    epochs.publish();
  }
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(epochs.current_epoch(), 20u);
  EXPECT_EQ(epochs.live_epochs(), 1u);
  EXPECT_EQ(epochs.retired_epochs(), 20u);
}

}  // namespace
}  // namespace bfsx::serve
