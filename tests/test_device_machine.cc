// Unit tests for Device (functional kernels + modelled time) and
// Machine (host + accelerators + link).
#include "sim/machine.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "bfs/validate.h"
#include "graph/builder.h"
#include "graph/generators.h"

namespace bfsx::sim {
namespace {

using bfs::BfsState;
using graph::build_csr;

TEST(Device, TopDownLevelAdvancesStateAndCharges) {
  const graph::CsrGraph g = build_csr(graph::make_star(50));
  const Device cpu{make_sandy_bridge_cpu()};
  BfsState state(g, 0);
  const LevelOutcome out = cpu.run_top_down_level(g, state);
  EXPECT_EQ(out.direction, bfs::Direction::kTopDown);
  EXPECT_EQ(out.level, 0);
  EXPECT_EQ(out.frontier_vertices, 1);
  EXPECT_EQ(out.frontier_edges, 49);
  EXPECT_EQ(out.next_vertices, 49);
  EXPECT_GT(out.seconds, 0.0);
  EXPECT_DOUBLE_EQ(out.seconds, cpu.top_down_cost(49));
  EXPECT_EQ(state.reached, 50);
}

TEST(Device, BottomUpLevelChargesHitMissSplit) {
  const graph::CsrGraph g = build_csr(graph::make_path(4));
  const Device gpu{make_kepler_gpu()};
  BfsState state(g, 0);
  const LevelOutcome out = gpu.run_bottom_up_level(g, state);
  EXPECT_EQ(out.direction, bfs::Direction::kBottomUp);
  EXPECT_EQ(out.bu_edges_hit, 1);
  EXPECT_EQ(out.bu_edges_miss, 3);
  EXPECT_DOUBLE_EQ(out.seconds,
                   gpu.bottom_up_cost(g.num_vertices(), 1, 3));
}

TEST(Device, FullTraversalViaLevelsIsValid) {
  const graph::CsrGraph g = build_csr(graph::make_binary_tree(200));
  const Device dev{make_knights_corner_mic()};
  BfsState state(g, 0);
  double total = 0.0;
  while (!state.frontier_empty()) {
    total += dev.run_top_down_level(g, state).seconds;
  }
  const bfs::BfsResult r = std::move(state).take_result(g);
  EXPECT_TRUE(bfs::validate_bfs(g, 0, r).ok);
  EXPECT_GT(total, 0.0);
}

TEST(Machine, PaperNodeHasGpuAndMic) {
  const Machine m = make_paper_node();
  EXPECT_EQ(m.host().name(), "SandyBridgeCPU");
  EXPECT_EQ(m.num_accelerators(), 2u);
  EXPECT_EQ(m.accelerator(0).name(), "KeplerK20xGPU");
  EXPECT_EQ(m.accelerator(1).name(), "KnightsCornerMIC");
}

TEST(Machine, DeviceByNameFindsAll) {
  const Machine m = make_paper_node();
  EXPECT_NO_THROW(m.device_by_name("SandyBridgeCPU"));
  EXPECT_NO_THROW(m.device_by_name("KeplerK20xGPU"));
  EXPECT_THROW(m.device_by_name("Cell"), std::out_of_range);
}

TEST(Machine, AcceleratorOutOfRangeThrows) {
  Machine m{Device{make_sandy_bridge_cpu()}, InterconnectSpec{}};
  EXPECT_THROW(m.accelerator(0), std::out_of_range);
}

TEST(Machine, AddAcceleratorReturnsConsecutiveIndices) {
  Machine m{Device{make_sandy_bridge_cpu()}, InterconnectSpec{}};
  EXPECT_EQ(m.num_accelerators(), 0u);
  EXPECT_EQ(m.add_accelerator(Device{make_kepler_gpu()}), 0u);
  EXPECT_EQ(m.add_accelerator(Device{make_knights_corner_mic()}), 1u);
  EXPECT_EQ(m.add_accelerator(Device{make_kepler_gpu()}), 2u);
  EXPECT_EQ(m.num_accelerators(), 3u);
}

TEST(Machine, AcceleratorIndexSelectsTheRightDevice) {
  Machine m{Device{make_sandy_bridge_cpu()}, InterconnectSpec{}};
  m.add_accelerator(Device{make_kepler_gpu()});
  m.add_accelerator(Device{make_knights_corner_mic()});
  EXPECT_EQ(m.accelerator(0).name(), "KeplerK20xGPU");
  EXPECT_EQ(m.accelerator(1).name(), "KnightsCornerMIC");
  // The default argument selects the first accelerator.
  EXPECT_EQ(m.accelerator().name(), "KeplerK20xGPU");
  // One past the end throws; valid indices are untouched by the probe.
  EXPECT_THROW(m.accelerator(2), std::out_of_range);
  EXPECT_EQ(m.num_accelerators(), 2u);
}

TEST(Machine, HandoffSecondsGrowWithGraph) {
  const Machine m = make_paper_node();
  EXPECT_LT(m.handoff_seconds(1'000), m.handoff_seconds(10'000'000));
  EXPECT_GT(m.handoff_seconds(1'000), 0.0);
}

}  // namespace
}  // namespace bfsx::sim
