// Unit tests for Dataset, Standardizer, split, and CSV round trips.
#include "ml/dataset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace bfsx::ml {
namespace {

Dataset tiny() {
  Dataset d;
  d.add({1.0, 10.0}, 100.0);
  d.add({2.0, 20.0}, 200.0);
  d.add({3.0, 30.0}, 300.0);
  return d;
}

TEST(Dataset, AddAndShape) {
  const Dataset d = tiny();
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_NO_THROW(d.validate());
}

TEST(Dataset, AddRejectsRaggedRow) {
  Dataset d = tiny();
  EXPECT_THROW(d.add({1.0}, 5.0), std::invalid_argument);
}

TEST(Dataset, ValidateCatchesMismatch) {
  Dataset d = tiny();
  d.y.pop_back();
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(Standardizer, ZeroMeanUnitVariance) {
  const Dataset d = tiny();
  const Standardizer s = Standardizer::fit(d);
  const Dataset z = s.transform_all(d);
  for (std::size_t j = 0; j < 2; ++j) {
    double mean = 0;
    double var = 0;
    for (const auto& row : z.x) mean += row[j];
    mean /= 3;
    for (const auto& row : z.x) var += (row[j] - mean) * (row[j] - mean);
    var /= 3;
    EXPECT_NEAR(mean, 0.0, 1e-12);
    EXPECT_NEAR(var, 1.0, 1e-12);
  }
}

TEST(Standardizer, ConstantColumnMapsToZero) {
  Dataset d;
  d.add({5.0, 1.0}, 0.0);
  d.add({5.0, 2.0}, 1.0);
  const Standardizer s = Standardizer::fit(d);
  const auto z = s.transform(std::vector<double>{5.0, 1.5});
  EXPECT_DOUBLE_EQ(z[0], 0.0);
  EXPECT_TRUE(std::isfinite(z[1]));
}

TEST(Standardizer, TransformRejectsWrongWidth) {
  const Standardizer s = Standardizer::fit(tiny());
  EXPECT_THROW(s.transform(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(Standardizer, FitRejectsEmpty) {
  EXPECT_THROW(Standardizer::fit(Dataset{}), std::invalid_argument);
}

TEST(Split, PartitionsWithoutLossOrDuplication) {
  Dataset d;
  for (int i = 0; i < 100; ++i) d.add({static_cast<double>(i)}, i);
  const SplitResult r = train_test_split(d, 0.8, 7);
  EXPECT_EQ(r.train.size(), 80u);
  EXPECT_EQ(r.test.size(), 20u);
  std::vector<double> all;
  for (const auto& row : r.train.x) all.push_back(row[0]);
  for (const auto& row : r.test.x) all.push_back(row[0]);
  std::sort(all.begin(), all.end());
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(all[static_cast<std::size_t>(i)], i);
}

TEST(Split, IsDeterministicPerSeedAndShuffles) {
  Dataset d;
  for (int i = 0; i < 50; ++i) d.add({static_cast<double>(i)}, i);
  const SplitResult a = train_test_split(d, 0.5, 3);
  const SplitResult b = train_test_split(d, 0.5, 3);
  EXPECT_EQ(a.train.x, b.train.x);
  // Shuffled: the train half is (almost surely) not just 0..24.
  bool identity = true;
  for (std::size_t i = 0; i < a.train.size(); ++i) {
    if (a.train.x[i][0] != static_cast<double>(i)) identity = false;
  }
  EXPECT_FALSE(identity);
}

TEST(Split, RejectsBadFraction) {
  EXPECT_THROW(train_test_split(tiny(), 1.5, 1), std::invalid_argument);
}

TEST(Csv, RoundTripsExactly) {
  const Dataset d = tiny();
  std::stringstream ss;
  write_csv(ss, d);
  const Dataset back = read_csv(ss);
  EXPECT_EQ(back.x, d.x);
  EXPECT_EQ(back.y, d.y);
}

TEST(Csv, ReadSkipsBlankLines) {
  std::stringstream ss("1,2,3\n\n4,5,6\n");
  const Dataset d = read_csv(ss);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.y[1], 6.0);
}

}  // namespace
}  // namespace bfsx::ml
