// Golden tests for obs::compute_percentiles: the nearest-rank rule
// (index = ceil(q*N) - 1) has exact expected values on small inputs,
// so every case here is checked against hand-computed numbers.
#include "obs/percentiles.h"

#include <gtest/gtest.h>

#include <vector>

namespace bfsx::obs {
namespace {

TEST(Percentiles, EmptyInputIsAllZero) {
  const Percentiles p = compute_percentiles({});
  EXPECT_EQ(p.count, 0u);
  EXPECT_EQ(p.min, 0.0);
  EXPECT_EQ(p.mean, 0.0);
  EXPECT_EQ(p.p50, 0.0);
  EXPECT_EQ(p.p95, 0.0);
  EXPECT_EQ(p.p99, 0.0);
  EXPECT_EQ(p.max, 0.0);
}

TEST(Percentiles, SingleSampleIsEveryPercentile) {
  const Percentiles p = compute_percentiles({42.0});
  EXPECT_EQ(p.count, 1u);
  EXPECT_EQ(p.min, 42.0);
  EXPECT_EQ(p.mean, 42.0);
  EXPECT_EQ(p.p50, 42.0);
  EXPECT_EQ(p.p95, 42.0);
  EXPECT_EQ(p.p99, 42.0);
  EXPECT_EQ(p.max, 42.0);
}

TEST(Percentiles, HundredSamplesHitExactRanks) {
  // 1..100: ceil(q*100) - 1 indexes the sample literally named q*100.
  std::vector<double> samples;
  for (int i = 100; i >= 1; --i) samples.push_back(i);  // reversed: must sort
  const Percentiles p = compute_percentiles(samples);
  EXPECT_EQ(p.count, 100u);
  EXPECT_EQ(p.min, 1.0);
  EXPECT_EQ(p.mean, 50.5);
  EXPECT_EQ(p.p50, 50.0);
  EXPECT_EQ(p.p95, 95.0);
  EXPECT_EQ(p.p99, 99.0);
  EXPECT_EQ(p.max, 100.0);
}

TEST(Percentiles, SmallNRoundsUpToRealSamples) {
  // N = 4: p50 -> ceil(2)-1 = index 1; p95/p99 -> ceil(3.8)/ceil(3.96)
  // -> index 3. Nearest-rank never interpolates between samples.
  const Percentiles p = compute_percentiles({10.0, 20.0, 30.0, 40.0});
  EXPECT_EQ(p.p50, 20.0);
  EXPECT_EQ(p.p95, 40.0);
  EXPECT_EQ(p.p99, 40.0);
  EXPECT_EQ(p.mean, 25.0);
}

TEST(Percentiles, TenSamplesP99IsTheMaximum) {
  std::vector<double> samples;
  for (int i = 1; i <= 10; ++i) samples.push_back(i * 0.5);
  const Percentiles p = compute_percentiles(samples);
  EXPECT_EQ(p.p50, 2.5);  // ceil(5)-1 = index 4
  EXPECT_EQ(p.p95, 5.0);  // ceil(9.5)-1 = index 9
  EXPECT_EQ(p.p99, 5.0);
  EXPECT_EQ(p.max, 5.0);
}

TEST(Percentiles, DuplicateHeavyDistribution) {
  // 99 fast samples and one stall: the mean moves a little, p99 jumps
  // to the stall — the reason serving benches report percentiles.
  std::vector<double> samples(99, 1.0);
  samples.push_back(101.0);
  const Percentiles p = compute_percentiles(samples);
  EXPECT_EQ(p.p50, 1.0);
  EXPECT_EQ(p.p95, 1.0);
  EXPECT_EQ(p.p99, 1.0);   // ceil(99)-1 = index 98, still a fast one
  EXPECT_EQ(p.max, 101.0);
  EXPECT_EQ(p.mean, 2.0);
}

}  // namespace
}  // namespace bfsx::obs
