// Unit and property tests for the from-scratch epsilon-SVR (SMO).
#include "ml/svr.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "graph/prng.h"
#include "ml/linreg.h"
#include "ml/metrics.h"

namespace bfsx::ml {
namespace {

Dataset sine_data(int n, std::uint64_t seed, double noise = 0.0) {
  graph::Xoshiro256ss rng(seed);
  Dataset d;
  for (int i = 0; i < n; ++i) {
    const double x0 = 3 * rng.next_double();
    const double x1 = 3 * rng.next_double();
    const double eps = noise * (rng.next_double() - 0.5);
    d.add({x0, x1}, std::sin(x0) + 0.5 * x1 + eps);
  }
  return d;
}

TEST(Svr, ConvergesOnSmoothTarget) {
  SvrTrainInfo info;
  const SvrModel m = SvrModel::fit(sine_data(140, 7), {}, &info);
  EXPECT_TRUE(info.converged);
  EXPECT_GT(info.support_vectors, 0);
  EXPECT_LE(info.support_vectors, 140);
}

TEST(Svr, RbfFitsNonlinearTargetWell) {
  const SvrModel m = SvrModel::fit(sine_data(140, 7), {.c = 10, .epsilon = 0.05});
  const Dataset test = sine_data(200, 99);
  EXPECT_GT(r_squared(test.y, m.predict_all(test)), 0.98);
}

TEST(Svr, BeatsLinearModelOnNonlinearTarget) {
  const Dataset train = sine_data(140, 3);
  const Dataset test = sine_data(200, 77);
  const SvrModel svr = SvrModel::fit(train, {.c = 10, .epsilon = 0.05});
  const RidgeModel ridge = RidgeModel::fit(train);
  EXPECT_GT(r_squared(test.y, svr.predict_all(test)),
            r_squared(test.y, ridge.predict_all(test)));
}

TEST(Svr, LinearKernelRecoversLinearRelation) {
  graph::Xoshiro256ss rng(21);
  Dataset d;
  for (int i = 0; i < 80; ++i) {
    const double x0 = rng.next_double() * 4;
    d.add({x0}, 2.5 * x0 - 1.0);
  }
  SvrParams p;
  p.kernel.type = KernelType::kLinear;
  p.c = 100;
  p.epsilon = 0.01;
  const SvrModel m = SvrModel::fit(d, p);
  EXPECT_NEAR(m.predict(std::vector<double>{2.0}), 4.0, 0.1);
  EXPECT_STREQ(m.kind(), "svr-linear");
}

TEST(Svr, EpsilonTubeIgnoresSmallNoise) {
  // With a wide tube, noisy targets inside the tube produce few SVs.
  SvrTrainInfo tight_info;
  SvrTrainInfo wide_info;
  const Dataset noisy = sine_data(100, 17, /*noise=*/0.1);
  (void)SvrModel::fit(noisy, {.c = 10, .epsilon = 0.01}, &tight_info);
  (void)SvrModel::fit(noisy, {.c = 10, .epsilon = 0.5}, &wide_info);
  EXPECT_LT(wide_info.support_vectors, tight_info.support_vectors);
}

TEST(Svr, ConstantTargetPredictsConstant) {
  Dataset d;
  for (int i = 0; i < 20; ++i) d.add({static_cast<double>(i)}, 42.0);
  const SvrModel m = SvrModel::fit(d);
  EXPECT_NEAR(m.predict(std::vector<double>{7.5}), 42.0, 0.5);
}

TEST(Svr, RejectsBadHyperparameters) {
  Dataset d;
  d.add({1.0}, 1.0);
  EXPECT_THROW(SvrModel::fit(d, {.c = 0}), std::invalid_argument);
  EXPECT_THROW(SvrModel::fit(d, {.epsilon = -0.1}), std::invalid_argument);
  EXPECT_THROW(SvrModel::fit(Dataset{}), std::invalid_argument);
}

TEST(Svr, DefaultGammaIsOneOverFeatures) {
  const SvrModel m = SvrModel::fit(sine_data(30, 1));
  EXPECT_DOUBLE_EQ(m.to_parts().kernel.gamma, 0.5);  // 2 features
}

TEST(Svr, PartsRoundTripPreservesPredictions) {
  const SvrModel m = SvrModel::fit(sine_data(60, 5));
  const SvrModel copy = SvrModel::from_parts(m.to_parts());
  graph::Xoshiro256ss rng(8);
  for (int i = 0; i < 20; ++i) {
    const std::vector<double> x = {3 * rng.next_double(), 3 * rng.next_double()};
    EXPECT_DOUBLE_EQ(m.predict(x), copy.predict(x));
  }
}

// Property sweep: SVR must interpolate y = a*x0 + b within tolerance
// for a grid of (a, b) slopes — the regression machinery cannot depend
// on the sign or magnitude of the relationship.
class SvrSlopeSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SvrSlopeSweep, FitsAffineFamily) {
  const auto [a, b] = GetParam();
  graph::Xoshiro256ss rng(31);
  Dataset train;
  for (int i = 0; i < 60; ++i) {
    const double x = rng.next_double() * 2 - 1;
    train.add({x}, a * x + b);
  }
  const SvrModel m = SvrModel::fit(train, {.c = 50, .epsilon = 0.01});
  for (double q : {-0.8, -0.2, 0.3, 0.9}) {
    const double want = a * q + b;
    const double tolerance = 0.05 * (1.0 + std::abs(a));
    EXPECT_NEAR(m.predict(std::vector<double>{q}), want, tolerance)
        << "a=" << a << " b=" << b << " q=" << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Slopes, SvrSlopeSweep,
    ::testing::Combine(::testing::Values(-20.0, -1.0, 0.0, 1.0, 20.0),
                       ::testing::Values(-5.0, 0.0, 5.0)));

}  // namespace
}  // namespace bfsx::ml
