// Unit tests for the top-down and bottom-up level-step kernels.
#include <gtest/gtest.h>

#include "bfs/bottomup.h"
#include "bfs/frontier.h"
#include "bfs/topdown.h"
#include "graph/builder.h"
#include "graph/generators.h"

namespace bfsx::bfs {
namespace {

using graph::build_csr;
using graph::make_binary_tree;
using graph::make_path;
using graph::make_star;

TEST(TopDownStep, ExpandsOneLevelOfAPath) {
  const CsrGraph g = build_csr(make_path(5));
  BfsState state(g, 0);
  const TopDownStats s = top_down_step(g, state);
  EXPECT_EQ(s.frontier_vertices, 1);
  EXPECT_EQ(s.frontier_edges, 1);  // vertex 0 has degree 1
  EXPECT_EQ(s.next_vertices, 1);
  EXPECT_EQ(state.current_level, 1);
  EXPECT_EQ(state.parent[1], 0);
  EXPECT_EQ(state.level[1], 1);
  ASSERT_EQ(state.frontier_queue.size(), 1u);
  EXPECT_EQ(state.frontier_queue[0], 1);
  EXPECT_TRUE(state.frontier_bitmap.test(1));
}

TEST(TopDownStep, StarExpandsAllSpokesAtOnce) {
  const CsrGraph g = build_csr(make_star(10));
  BfsState state(g, 0);
  const TopDownStats s = top_down_step(g, state);
  EXPECT_EQ(s.frontier_edges, 9);
  EXPECT_EQ(s.next_vertices, 9);
  EXPECT_EQ(state.reached, 10);
  for (vid_t v = 1; v < 10; ++v) EXPECT_EQ(state.parent[v], 0);
}

TEST(TopDownStep, EachVertexGetsExactlyOneParent) {
  // Binary tree: both children of the root expand simultaneously; their
  // shared grandchildren must be claimed exactly once.
  const CsrGraph g = build_csr(make_binary_tree(31));
  BfsState state(g, 0);
  while (!state.frontier_empty()) top_down_step(g, state);
  for (vid_t v = 1; v < 31; ++v) {
    EXPECT_EQ(state.parent[static_cast<std::size_t>(v)], (v - 1) / 2);
  }
}

TEST(BottomUpStep, FindsParentsForAdjacentUnvisited) {
  const CsrGraph g = build_csr(make_star(6));
  BfsState state(g, 0);
  const BottomUpStats s = bottom_up_step(g, state);
  EXPECT_EQ(s.unvisited_vertices, 5);
  EXPECT_EQ(s.next_vertices, 5);
  EXPECT_EQ(state.reached, 6);
  for (vid_t v = 1; v < 6; ++v) EXPECT_EQ(state.parent[v], 0);
}

TEST(BottomUpStep, CountsHitAndMissScans) {
  // Path 0-1-2-3: from root 0, a bottom-up level scans 1 (hit via 0),
  // 2 (misses: neighbours 1,3 not in frontier), 3 (miss).
  const CsrGraph g = build_csr(make_path(4));
  BfsState state(g, 0);
  const BottomUpStats s = bottom_up_step(g, state);
  EXPECT_EQ(s.next_vertices, 1);
  EXPECT_EQ(s.edges_scanned_hit, 1);   // vertex 1 found 0 immediately
  EXPECT_EQ(s.edges_scanned_miss, 3);  // vertex 2 walked {1,3}, vertex 3 walked {2}
  EXPECT_EQ(s.edges_scanned(), 4);
}

TEST(BottomUpStep, SameLevelVertexCannotParentSameLevel) {
  // Cycle of 4 from root 0: level 1 = {1, 3}. Vertex 2 is adjacent to
  // both but must land in level 2, never level 1.
  const CsrGraph g = build_csr(graph::make_cycle(4));
  BfsState state(g, 0);
  bottom_up_step(g, state);
  EXPECT_EQ(state.level[1], 1);
  EXPECT_EQ(state.level[3], 1);
  EXPECT_EQ(state.level[2], -1);  // not yet
  bottom_up_step(g, state);
  EXPECT_EQ(state.level[2], 2);
}

TEST(BottomUpProbe, MatchesStepWithoutMutation) {
  const CsrGraph g = build_csr(make_binary_tree(63));
  BfsState state(g, 0);
  top_down_step(g, state);  // move to level 1 so the probe is non-trivial

  const BottomUpStats probe = bottom_up_probe(g, state);
  const auto parent_before = state.parent;
  const auto reached_before = state.reached;
  // Probe must not have touched the state.
  EXPECT_EQ(state.parent, parent_before);
  EXPECT_EQ(state.reached, reached_before);

  const BottomUpStats step = bottom_up_step(g, state);
  EXPECT_EQ(probe.unvisited_vertices, step.unvisited_vertices);
  EXPECT_EQ(probe.edges_scanned_hit, step.edges_scanned_hit);
  EXPECT_EQ(probe.edges_scanned_miss, step.edges_scanned_miss);
  EXPECT_EQ(probe.next_vertices, step.next_vertices);
}

TEST(MixedSteps, DirectionsInterleaveCleanly) {
  // Alternate TD/BU on a tree and verify the final parent map is the
  // exact tree structure regardless of the direction sequence.
  const CsrGraph g = build_csr(make_binary_tree(127));
  BfsState state(g, 0);
  int level = 0;
  while (!state.frontier_empty()) {
    if (level % 2 == 0) {
      top_down_step(g, state);
    } else {
      bottom_up_step(g, state);
    }
    ++level;
  }
  EXPECT_EQ(state.reached, 127);
  for (vid_t v = 1; v < 127; ++v) {
    EXPECT_EQ(state.parent[static_cast<std::size_t>(v)], (v - 1) / 2);
  }
}

TEST(BottomUpStep, CandidateListShrinksBelowNAfterFirstLevel) {
  // Zero-rescan acceptance: after the first bottom-up level the scan
  // trip count must be the compacted unvisited list, strictly below n,
  // and it must shrink by exactly the discoveries of each level.
  const CsrGraph g = build_csr(make_binary_tree(127));
  const vid_t n = g.num_vertices();
  BfsState state(g, 0);

  const BottomUpStats first = bottom_up_step(g, state);
  // Priming happens after the root is visited, so even the first level
  // iterates n-1 candidates, and the list is exact afterwards.
  EXPECT_EQ(first.candidates, n - 1);
  EXPECT_EQ(static_cast<vid_t>(state.unvisited.size()),
            n - 1 - first.next_vertices);

  vid_t expected = n - 1 - first.next_vertices;
  while (!state.frontier_empty()) {
    const BottomUpStats s = bottom_up_step(g, state);
    EXPECT_EQ(s.candidates, expected);
    EXPECT_LT(s.candidates, n);
    EXPECT_EQ(s.unvisited_vertices, s.candidates);  // list is exact
    expected -= s.next_vertices;
  }
  EXPECT_EQ(state.reached, n);
}

TEST(BottomUpStep, ScratchBitmapStaysClearBetweenLevels) {
  // The reused next-frontier bitmap must return to all-zero after every
  // step (dirty-word wipe), or a later level would inherit phantom
  // frontier bits.
  const CsrGraph g = build_csr(graph::make_cycle(64));
  BfsState state(g, 0);
  EXPECT_EQ(state.bu_scratch.count(), 0u);
  while (!state.frontier_empty()) {
    bottom_up_step(g, state);
    EXPECT_EQ(state.bu_scratch.count(), 0u);
  }
  EXPECT_EQ(state.reached, 64);
}

TEST(BottomUpStep, CandidateListSurvivesTopDownInterleaving) {
  // A top-down step visits vertices behind the candidate list's back;
  // the next bottom-up step must skip those stragglers (keeping every
  // counter exact) and compact them away.
  const CsrGraph g = build_csr(make_binary_tree(255));
  BfsState state(g, 0);
  bottom_up_step(g, state);  // primes the list
  const std::size_t before = state.unvisited.size();
  top_down_step(g, state);   // visits level-2 vertices, list now stale
  const BottomUpStats s = bottom_up_step(g, state);
  EXPECT_EQ(static_cast<std::size_t>(s.candidates), before);
  EXPECT_LT(s.unvisited_vertices, s.candidates);  // stragglers skipped
  EXPECT_EQ(static_cast<vid_t>(state.unvisited.size()),
            static_cast<vid_t>(255) - state.reached);
  while (!state.frontier_empty()) bottom_up_step(g, state);
  for (vid_t v = 1; v < 255; ++v) {
    EXPECT_EQ(state.parent[static_cast<std::size_t>(v)], (v - 1) / 2);
  }
}

TEST(FrontierHelpers, ParallelBitmapToQueueMatchesSerialDecode) {
  // Big enough (> 4096 words) to take the popcount-prefix parallel
  // path; the result must be the exact ascending order of for_each_set.
  const std::size_t n = 300000;
  graph::Bitmap bm(n);
  std::vector<vid_t> expect;
  for (std::size_t v = 0; v < n; v += 1 + (v % 97)) {
    bm.set(v);
    expect.push_back(static_cast<vid_t>(v));
  }
  std::vector<vid_t> queue{1, 2, 3};  // stale contents must be replaced
  bitmap_to_queue(bm, queue);
  EXPECT_EQ(queue, expect);
}

TEST(FrontierHelpers, QueueBitmapRoundTrip) {
  graph::Bitmap bm(100);
  const std::vector<vid_t> q = {3, 17, 64, 99};
  queue_to_bitmap(q, bm);
  EXPECT_EQ(bm.count(), 4u);
  std::vector<vid_t> back;
  bitmap_to_queue(bm, back);
  EXPECT_EQ(back, q);
}

TEST(FrontierHelpers, OutEdgeCount) {
  const CsrGraph g = build_csr(make_star(5));
  EXPECT_EQ(frontier_out_edges(g, {0}), 4);
  EXPECT_EQ(frontier_out_edges(g, {1, 2}), 2);
  EXPECT_EQ(frontier_out_edges(g, {}), 0);
}

}  // namespace
}  // namespace bfsx::bfs
