// Tests for multi-root sweeps and the TimePredictor / accelerator
// auto-selection extension.
#include <gtest/gtest.h>

#include <sstream>

#include "bfs/validate.h"
#include "core/api.h"
#include "core/level_trace.h"
#include "core/tuner.h"
#include "graph/builder.h"
#include "graph/graph_stats.h"
#include "graph/rmat.h"

namespace bfsx::core {
namespace {

struct MultiFixture {
  graph::CsrGraph g;
  std::vector<LevelTrace> traces;

  MultiFixture() {
    graph::RmatParams p;
    p.scale = 11;
    g = graph::build_csr(graph::generate_rmat(p));
    for (graph::vid_t root : graph::sample_roots(g, 4, 21)) {
      traces.push_back(build_level_trace(g, root));
    }
  }
};

TEST(MultiRoot, SweepSumsPerRootReplays) {
  MultiFixture f;
  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  const SwitchCandidates cands = SwitchCandidates::coarse_grid();
  const CandidateSweep multi = sweep_single_multi(f.traces, cpu, cands);
  for (std::size_t i = 0; i < cands.size(); i += 9) {
    double want = 0;
    for (const LevelTrace& t : f.traces) {
      want += replay_single(t, cpu, cands.at(i));
    }
    EXPECT_DOUBLE_EQ(multi.seconds[i], want);
  }
}

TEST(MultiRoot, BestExpectedPolicyDominatesPerRootAverages) {
  MultiFixture f;
  const sim::ArchSpec gpu = sim::make_kepler_gpu();
  const SwitchCandidates cands = SwitchCandidates::paper_grid();
  const TunedPolicy multi_best =
      pick_best(sweep_single_multi(f.traces, gpu, cands), cands);
  // The multi-root optimum must beat applying root 0's optimum to all
  // roots, or at worst tie it.
  const TunedPolicy root0_best =
      pick_best(sweep_single(f.traces[0], gpu, cands), cands);
  double root0_applied = 0;
  for (const LevelTrace& t : f.traces) {
    root0_applied += replay_single(t, gpu, root0_best.policy);
  }
  EXPECT_LE(multi_best.seconds, root0_applied + 1e-15);
}

TEST(MultiRoot, CrossVariantMatchesManualSum) {
  MultiFixture f;
  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  const sim::ArchSpec gpu = sim::make_kepler_gpu();
  const sim::InterconnectSpec link;
  const SwitchCandidates cands = SwitchCandidates::coarse_grid();
  const HybridPolicy inner{14, 24};
  const CandidateSweep multi =
      sweep_cross_multi(f.traces, cpu, gpu, link, cands, inner);
  double want = 0;
  for (const LevelTrace& t : f.traces) {
    want += replay_cross(t, cpu, gpu, link, cands.at(3), inner);
  }
  EXPECT_DOUBLE_EQ(multi.seconds[3], want);
}

TEST(MultiRoot, EmptyTraceListThrows) {
  const SwitchCandidates cands = SwitchCandidates::coarse_grid();
  EXPECT_THROW(
      sweep_single_multi({}, sim::make_sandy_bridge_cpu(), cands),
      std::invalid_argument);
}

// ---- TimePredictor -------------------------------------------------

TrainerConfig tiny_config() {
  TrainerConfig cfg;
  for (int scale : {10, 11, 12}) {
    for (int ef : {8, 16}) {
      graph::RmatParams p;
      p.scale = scale;
      p.edgefactor = ef;
      p.seed = 55;
      cfg.graphs.push_back(p);
    }
  }
  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  const sim::ArchSpec gpu = sim::make_kepler_gpu();
  const sim::ArchSpec mic = sim::make_knights_corner_mic();
  cfg.arch_pairs = {{cpu, gpu}, {cpu, mic}, {gpu, gpu}, {mic, mic}};
  cfg.candidates = SwitchCandidates::coarse_grid();
  return cfg;
}

TEST(TimePredictor, TrainingDataCarriesLogSeconds) {
  const TrainingData data = generate_training_data(tiny_config());
  ASSERT_EQ(data.t_data.size(), data.m_data.size());
  for (double t : data.t_data.y) {
    EXPECT_LT(t, 1.0);    // < 10 s
    EXPECT_GT(t, -7.0);   // > 100 ns
  }
}

TEST(TimePredictor, PredictsOrderOfMagnitudeOnTrainingPoints) {
  const TrainingData data = generate_training_data(tiny_config());
  const TimePredictor times = train_time_predictor(data);
  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  const sim::ArchSpec gpu = sim::make_kepler_gpu();
  graph::RmatParams p;
  p.scale = 11;
  p.edgefactor = 16;
  p.seed = 55;
  const double predicted =
      times.predict_seconds(features_from_rmat(p), cpu, gpu);
  EXPECT_GT(predicted, 1e-5);
  EXPECT_LT(predicted, 1.0);
}

TEST(TimePredictor, SaveLoadRoundTrip) {
  const TimePredictor times =
      train_time_predictor(generate_training_data(tiny_config()));
  std::stringstream ss;
  times.save(ss);
  const TimePredictor back = TimePredictor::load(ss);
  const sim::ArchSpec cpu = sim::make_sandy_bridge_cpu();
  graph::RmatParams p;
  p.scale = 12;
  EXPECT_DOUBLE_EQ(
      times.predict_seconds(features_from_rmat(p), cpu, cpu),
      back.predict_seconds(features_from_rmat(p), cpu, cpu));
}

TEST(AcceleratorSelection, PrefersGpuOverMicForRmat) {
  // On every training configuration the GPU pairing beat the MIC
  // pairing, so the ranking must pick the GPU (index 0 in the paper
  // node) for an in-family graph.
  const TrainingData data = generate_training_data(tiny_config());
  const TimePredictor times = train_time_predictor(data);
  sim::Machine machine = sim::make_paper_node();
  graph::RmatParams p;
  p.scale = 11;
  p.edgefactor = 12;
  const std::size_t pick =
      select_accelerator(features_from_rmat(p), machine, times);
  EXPECT_EQ(machine.accelerator(pick).name(), "KeplerK20xGPU");
}

TEST(AcceleratorSelection, RunAdaptiveAutoProducesValidRun) {
  const TrainingData data = generate_training_data(tiny_config());
  const TimePredictor times = train_time_predictor(data);
  const SwitchPredictor predictor = train_predictor(data);
  sim::Machine machine = sim::make_paper_node();
  graph::RmatParams p;
  p.scale = 11;
  p.seed = 77;
  const graph::CsrGraph g = graph::build_csr(graph::generate_rmat(p));
  const graph::vid_t root = graph::sample_roots(g, 1, 1)[0];
  const CombinationRun run = run_adaptive_auto(
      g, root, features_from_rmat(p), machine, predictor, times);
  EXPECT_TRUE(bfs::validate_bfs(g, root, run.result).ok);
}

TEST(AcceleratorSelection, ThrowsWithoutAccelerators) {
  const TimePredictor times =
      train_time_predictor(generate_training_data(tiny_config()));
  sim::Machine bare{sim::Device{sim::make_sandy_bridge_cpu()},
                    sim::InterconnectSpec{}};
  graph::RmatParams p;
  EXPECT_THROW(select_accelerator(features_from_rmat(p), bare, times),
               std::invalid_argument);
}

}  // namespace
}  // namespace bfsx::core
