// Unit tests for model serialisation (text format round trips).
#include "ml/model_io.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "graph/prng.h"

namespace bfsx::ml {
namespace {

Dataset quad_data(int n, std::uint64_t seed) {
  graph::Xoshiro256ss rng(seed);
  Dataset d;
  for (int i = 0; i < n; ++i) {
    const double x = rng.next_double() * 4 - 2;
    d.add({x, x * 0.5}, x * x + 1);
  }
  return d;
}

TEST(ModelIo, SvrRoundTripPredictsIdentically) {
  const SvrModel m = SvrModel::fit(quad_data(80, 3));
  std::stringstream ss;
  save_svr(ss, m);
  const SvrModel back = load_svr(ss);
  graph::Xoshiro256ss rng(5);
  for (int i = 0; i < 25; ++i) {
    const double x = rng.next_double() * 4 - 2;
    const std::vector<double> q = {x, x * 0.5};
    EXPECT_DOUBLE_EQ(m.predict(q), back.predict(q));
  }
}

TEST(ModelIo, RidgeRoundTripPredictsIdentically) {
  const RidgeModel m = RidgeModel::fit(quad_data(80, 9));
  std::stringstream ss;
  save_ridge(ss, m);
  const RidgeModel back = load_ridge(ss);
  for (double x : {-1.5, 0.0, 0.7, 1.9}) {
    const std::vector<double> q = {x, x * 0.5};
    EXPECT_DOUBLE_EQ(m.predict(q), back.predict(q));
  }
}

TEST(ModelIo, LoadRejectsWrongKind) {
  const RidgeModel m = RidgeModel::fit(quad_data(20, 1));
  std::stringstream ss;
  save_ridge(ss, m);
  EXPECT_THROW(load_svr(ss), std::runtime_error);
}

TEST(ModelIo, LoadRejectsGarbageHeader) {
  std::stringstream ss("not-a-model at all");
  EXPECT_THROW(load_svr(ss), std::runtime_error);
}

TEST(ModelIo, LoadRejectsTruncatedBody) {
  const SvrModel m = SvrModel::fit(quad_data(30, 2));
  std::stringstream full;
  save_svr(full, m);
  const std::string text = full.str();
  std::stringstream cut(text.substr(0, text.size() / 2));
  EXPECT_THROW(load_svr(cut), std::runtime_error);
}

TEST(ModelIo, FileHelpersRoundTrip) {
  const SvrModel m = SvrModel::fit(quad_data(40, 4));
  const std::string path = ::testing::TempDir() + "/bfsx_svr_model.txt";
  save_svr_file(path, m);
  const SvrModel back = load_svr_file(path);
  const std::vector<double> q = {0.5, 0.25};
  EXPECT_DOUBLE_EQ(m.predict(q), back.predict(q));
}

TEST(ModelIo, FileHelpersThrowOnBadPath) {
  const SvrModel m = SvrModel::fit(quad_data(20, 6));
  EXPECT_THROW(save_svr_file("/nonexistent-dir/x.txt", m),
               std::runtime_error);
  EXPECT_THROW(load_svr_file("/nonexistent-dir/x.txt"), std::runtime_error);
}

}  // namespace
}  // namespace bfsx::ml
